package fri

import (
	"math/rand"
	"testing"

	"zkflow/internal/field"
	"zkflow/internal/poly"
	"zkflow/internal/transcript"
)

var testShift = field.Elem(field.Generator)

func randomPoly(seed int64, degreeBound int) poly.Poly {
	rng := rand.New(rand.NewSource(seed))
	p := make(poly.Poly, degreeBound)
	for i := range p {
		p[i] = field.New(rng.Uint64())
	}
	return p
}

func proveRoundTrip(t *testing.T, seed int64, domain, degreeBound int, params Params) (*Proof, error) {
	t.Helper()
	p := randomPoly(seed, degreeBound)
	evals := poly.CosetEval(p, testShift, domain)
	tr := transcript.New("fri-test")
	proof, err := Prove(evals, degreeBound, testShift, tr, params)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	vtr := transcript.New("fri-test")
	return proof, Verify(proof, domain, degreeBound, testShift, vtr, params, nil)
}

func TestLowDegreeAccepted(t *testing.T) {
	for _, tc := range []struct{ domain, bound int }{
		{64, 8}, {256, 32}, {1024, 128}, {4096, 1024},
	} {
		if _, err := proveRoundTrip(t, int64(tc.domain), tc.domain, tc.bound, DefaultParams); err != nil {
			t.Errorf("domain=%d bound=%d: %v", tc.domain, tc.bound, err)
		}
	}
}

func TestSmallDomainNoFolding(t *testing.T) {
	// degreeBound <= FinalDegree: the polynomial is sent directly.
	if _, err := proveRoundTrip(t, 1, 64, 4, DefaultParams); err != nil {
		t.Fatal(err)
	}
}

func TestHighDegreeRejected(t *testing.T) {
	// Evaluations of a degree-(bound*4) polynomial claimed as bound.
	domain, bound := 512, 16
	p := randomPoly(2, bound*4)
	evals := poly.CosetEval(p, testShift, domain)
	tr := transcript.New("fri-test")
	proof, err := Prove(evals, bound, testShift, tr, DefaultParams)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	vtr := transcript.New("fri-test")
	if err := Verify(proof, domain, bound, testShift, vtr, DefaultParams, nil); err == nil {
		t.Fatal("high-degree vector accepted")
	}
}

func TestTamperedFinalRejected(t *testing.T) {
	p := randomPoly(3, 32)
	evals := poly.CosetEval(p, testShift, 256)
	tr := transcript.New("fri-test")
	proof, err := Prove(evals, 32, testShift, tr, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	proof.Final[0] = field.Add(proof.Final[0], field.One)
	vtr := transcript.New("fri-test")
	if err := Verify(proof, 256, 32, testShift, vtr, DefaultParams, nil); err == nil {
		t.Fatal("tampered final polynomial accepted")
	}
}

func TestTamperedOpeningRejected(t *testing.T) {
	p := randomPoly(4, 32)
	evals := poly.CosetEval(p, testShift, 256)
	tr := transcript.New("fri-test")
	proof, err := Prove(evals, 32, testShift, tr, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	proof.Queries[0].Openings[0].Lo = field.Add(proof.Queries[0].Openings[0].Lo, field.One)
	vtr := transcript.New("fri-test")
	if err := Verify(proof, 256, 32, testShift, vtr, DefaultParams, nil); err == nil {
		t.Fatal("tampered opening accepted")
	}
}

func TestWrongRootRejected(t *testing.T) {
	p := randomPoly(5, 32)
	evals := poly.CosetEval(p, testShift, 256)
	tr := transcript.New("fri-test")
	proof, err := Prove(evals, 32, testShift, tr, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	proof.Roots[0][0] ^= 1
	vtr := transcript.New("fri-test")
	if err := Verify(proof, 256, 32, testShift, vtr, DefaultParams, nil); err == nil {
		t.Fatal("tampered root accepted")
	}
}

func TestLayer0BindingEnforced(t *testing.T) {
	p := randomPoly(6, 32)
	domain := 256
	evals := poly.CosetEval(p, testShift, domain)
	tr := transcript.New("fri-test")
	proof, err := Prove(evals, 32, testShift, tr, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	// Correct binding accepted.
	vtr := transcript.New("fri-test")
	ok := func(pos int) (field.Elem, error) { return evals[pos], nil }
	if err := Verify(proof, domain, 32, testShift, vtr, DefaultParams, ok); err != nil {
		t.Fatalf("correct binding rejected: %v", err)
	}
	// Wrong binding rejected.
	vtr2 := transcript.New("fri-test")
	bad := func(pos int) (field.Elem, error) { return field.Add(evals[pos], field.One), nil }
	if err := Verify(proof, domain, 32, testShift, vtr2, DefaultParams, bad); err == nil {
		t.Fatal("wrong layer-0 binding accepted")
	}
}

func TestStatementBindingViaTranscript(t *testing.T) {
	// A proof generated under one transcript prefix must not verify
	// under another (Fiat-Shamir statement binding).
	p := randomPoly(7, 32)
	evals := poly.CosetEval(p, testShift, 256)
	tr := transcript.New("fri-test")
	tr.Append("statement", []byte("A"))
	proof, err := Prove(evals, 32, testShift, tr, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	vtr := transcript.New("fri-test")
	vtr.Append("statement", []byte("B"))
	if err := Verify(proof, 256, 32, testShift, vtr, DefaultParams, nil); err == nil {
		t.Fatal("proof transplanted across statements")
	}
}

func TestProofSizeLogarithmic(t *testing.T) {
	_, err := proveRoundTrip(t, 8, 4096, 512, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	p := randomPoly(8, 512)
	evals := poly.CosetEval(p, testShift, 4096)
	tr := transcript.New("fri-test")
	proof, _ := Prove(evals, 512, testShift, tr, DefaultParams)
	// A 4096-point vector is 32 KiB; the proof must be far below the
	// data size multiplied by queries (i.e., actually succinct per
	// layer) — sanity bound: < 512 KiB.
	if proof.Size() > 512*1024 {
		t.Fatalf("proof size %d", proof.Size())
	}
}

func TestProveRejectsBadInputs(t *testing.T) {
	tr := transcript.New("fri-test")
	if _, err := Prove(make([]field.Elem, 100), 8, testShift, tr, DefaultParams); err == nil {
		t.Fatal("non-power-of-two domain accepted")
	}
	if _, err := Prove(make([]field.Elem, 64), 64, testShift, tr, DefaultParams); err == nil {
		t.Fatal("rate-1 bound accepted")
	}
	if _, err := Prove(make([]field.Elem, 64), 3, testShift, tr, DefaultParams); err == nil {
		t.Fatal("non-power-of-two bound accepted")
	}
}

func BenchmarkProve4096(b *testing.B) {
	p := randomPoly(9, 512)
	evals := poly.CosetEval(p, testShift, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := transcript.New("fri-bench")
		if _, err := Prove(evals, 512, testShift, tr, DefaultParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify4096(b *testing.B) {
	p := randomPoly(10, 512)
	evals := poly.CosetEval(p, testShift, 4096)
	tr := transcript.New("fri-bench")
	proof, err := Prove(evals, 512, testShift, tr, DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vtr := transcript.New("fri-bench")
		if err := Verify(proof, 4096, 512, testShift, vtr, DefaultParams, nil); err != nil {
			b.Fatal(err)
		}
	}
}
