// Package fri implements the FRI (Fast Reed-Solomon IOP of Proximity)
// low-degree test over the Goldilocks field: the prover convinces the
// verifier that a committed evaluation vector over a multiplicative
// coset is (close to) the evaluation of a polynomial of bounded
// degree, in logarithmically many Merkle-committed folding layers.
//
// This is the succinctness engine of the specialized STARK prover
// (paper §7, "specialization proof systems"): unlike the zkVM's
// committed-trace argument, soundness here is cryptographic in the
// query count and the proof carries no trace rows at all.
package fri

import (
	"errors"
	"fmt"
	"math/bits"

	"zkflow/internal/field"
	"zkflow/internal/merkle"
	"zkflow/internal/par"
	"zkflow/internal/poly"
	"zkflow/internal/transcript"
)

// Params configures the protocol.
type Params struct {
	// Queries is the number of spot-check positions (soundness
	// ~ rate^Queries contributions; 32 is a demo-grade default).
	Queries int
	// FinalDegree is the degree bound below which the prover sends
	// the polynomial in the clear instead of folding further.
	FinalDegree int
	// Parallelism bounds the prover-side worker fan-out for layer
	// hashing and folding (0 = GOMAXPROCS, 1 = serial). It is a pure
	// throughput knob: folds are exact arithmetic over disjoint index
	// ranges, so the proof bytes are identical at every width. Verify
	// ignores it.
	Parallelism int
}

// DefaultParams are demo-grade parameters.
var DefaultParams = Params{Queries: 32, FinalDegree: 8}

// Leaf layout: position j of a layer of size n commits the pair
// (evals[j], evals[j+n/2]) so one opening serves one fold.
func leafBytes(a, b field.Elem) []byte {
	var buf [16]byte
	putElem(buf[:8], a)
	putElem(buf[8:], b)
	return buf[:]
}

func putElem(dst []byte, e field.Elem) {
	v := uint64(e)
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func getElem(src []byte) (field.Elem, error) {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	if v >= field.Modulus {
		return 0, errors.New("fri: non-canonical element")
	}
	return field.Elem(v), nil
}

// LayerOpening is one opened leaf of one layer.
type LayerOpening struct {
	// Lo and Hi are the pair (evals[j], evals[j+n/2]).
	Lo, Hi field.Elem
	Path   []merkle.Hash
}

// QueryProof carries, for one query position, the opened leaf of
// every layer from 0 to the last folded layer.
type QueryProof struct {
	Openings []LayerOpening
}

// Proof is a complete FRI proof.
type Proof struct {
	// Roots are the layer commitments, layer 0 first.
	Roots []merkle.Hash
	// Final is the last polynomial, sent in coefficient form.
	Final poly.Poly
	// Queries are the per-position opening chains.
	Queries []QueryProof
	// Positions records the derived query positions (redundant with
	// the transcript; kept for callers that need them, e.g. the STARK
	// trace openings).
	Positions []int
}

// Size returns the encoded proof size in bytes (8 bytes per element,
// 32 per path hash).
func (p *Proof) Size() int {
	n := 32*len(p.Roots) + 8*len(p.Final)
	for i := range p.Queries {
		for j := range p.Queries[i].Openings {
			n += 16 + 32*len(p.Queries[i].Openings[j].Path)
		}
	}
	return n
}

// buildLayer commits one evaluation layer, hashing leaf pairs straight
// into the tree's arena leaf level (chunk-parallel for wide layers).
func buildLayer(evals []field.Elem, workers int) *merkle.Tree {
	half := len(evals) / 2
	return merkle.BuildLeavesParallel(half, workers, func(leaves []merkle.Hash) {
		par.ForChunks(workers, half, func(lo, hi int) {
			var buf [16]byte
			for j := lo; j < hi; j++ {
				putElem(buf[:8], evals[j])
				putElem(buf[8:], evals[j+half])
				leaves[j] = merkle.LeafHash(buf[:])
			}
		})
	})
}

// foldInto halves the evaluation vector into out:
// f'(x^2) = (f(x)+f(-x))/2 + beta*(f(x)-f(-x))/(2x).
// The 1/x ladder comes from the process-wide cache (built by the same
// chained multiplication the serial loop performed), and the chunks
// write disjoint index ranges, so the output is bit-identical at any
// worker count.
func foldInto(out, evals []field.Elem, shift field.Elem, beta field.Elem, workers int) {
	n := len(evals)
	half := n / 2
	if len(out) != half {
		panic("fri: foldInto length mismatch")
	}
	logN := bits.Len(uint(n)) - 1
	w := field.RootOfUnity(logN)
	inv2 := field.Inv(field.New(2))
	xInv := poly.PowerLadder(field.Inv(shift), field.Inv(w), half)
	par.ForChunks(workers, half, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			fx := evals[j]
			fmx := evals[j+half]
			even := field.Mul(field.Add(fx, fmx), inv2)
			odd := field.Mul(field.Mul(field.Sub(fx, fmx), inv2), xInv[j])
			out[j] = field.Add(even, field.Mul(beta, odd))
		}
	})
}

// Prove runs the commit and query phases over evals (length a power
// of two ≥ 2) claimed to have degree < degreeBound, evaluated over
// the coset shift*<w>. The transcript must already have absorbed the
// statement the caller is binding this proof to.
func Prove(evals []field.Elem, degreeBound int, shift field.Elem, tr *transcript.Transcript, params Params) (*Proof, error) {
	n := len(evals)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fri: domain size %d not a power of two", n)
	}
	if degreeBound <= 0 || degreeBound&(degreeBound-1) != 0 || degreeBound >= n {
		return nil, fmt.Errorf("fri: degree bound %d invalid for domain %d", degreeBound, n)
	}
	if params.Queries <= 0 {
		params = DefaultParams
	}

	workers := params.Parallelism

	// Commit phase. Layer 0 is the caller's evals (never recycled or
	// mutated); every subsequent layer lives in a pooled scratch slice
	// recycled after the query phase, and layer trees are arena-built
	// and Released once their openings are proved — steady-state FRI
	// proving allocates only the proof itself.
	var (
		trees  []*merkle.Tree
		layers [][]field.Elem
		proof  Proof
	)
	cur := evals
	curShift := shift
	bound := degreeBound
	for bound > params.FinalDegree && len(cur) > 2 {
		t := buildLayer(cur, workers)
		trees = append(trees, t)
		layers = append(layers, cur)
		root := t.Root()
		proof.Roots = append(proof.Roots, root)
		tr.Append("fri-root", root[:])
		beta := tr.ChallengeElem("fri-beta")
		next := poly.GetBuf(len(cur) / 2)
		foldInto(next, cur, curShift, beta, workers)
		cur = next
		curShift = field.Square(curShift)
		bound /= 2
	}
	// Final polynomial in the clear. Proof.Final must own its memory
	// (cur may be pooled scratch), so the bound-length prefix is copied
	// out; when folds happened the interpolation itself runs in place.
	var final poly.Poly
	if len(layers) > 0 {
		final = poly.CosetInterpolateInPlace(cur, curShift)
	} else {
		final = poly.CosetInterpolate(cur, curShift)
	}
	proof.Final = append(poly.Poly(nil), final[:bound]...)
	if len(layers) > 0 {
		poly.PutBuf(cur)
	}
	tr.AppendElems("fri-final", proof.Final...)

	// Query phase.
	positions := tr.ChallengeIndices("fri-query", params.Queries, n/2)
	proof.Positions = positions
	for _, q := range positions {
		var qp QueryProof
		j := q
		for li := range layers {
			size := len(layers[li])
			mp, err := trees[li].Prove(j % (size / 2))
			if err != nil {
				return nil, fmt.Errorf("fri: layer %d opening: %w", li, err)
			}
			lo := layers[li][j%(size/2)]
			hi := layers[li][j%(size/2)+size/2]
			qp.Openings = append(qp.Openings, LayerOpening{Lo: lo, Hi: hi, Path: mp.Path})
			j %= size / 2
		}
		proof.Queries = append(proof.Queries, qp)
	}
	// Recycle the commit-phase scratch: fold layers (never layer 0,
	// which the caller owns) and the arena-backed trees. Prove copied
	// every opened path, so nothing in the proof aliases them.
	if len(layers) > 1 {
		for _, l := range layers[1:] {
			poly.PutBuf(l)
		}
	}
	for _, t := range trees {
		t.Release()
	}
	return &Proof{Roots: proof.Roots, Final: proof.Final, Queries: proof.Queries, Positions: positions}, nil
}

// ErrReject is wrapped by all verification failures.
var ErrReject = errors.New("fri: proof rejected")

// Verify checks the proof against the same transcript prefix used by
// the prover. layer0 optionally supplies the caller's expected layer-0
// values: layer0(j) must return the claimed evaluation at domain
// position j for each opened position (the STARK uses this to tie FRI
// to the constraint composition). Pass nil to skip that binding.
func Verify(proof *Proof, n, degreeBound int, shift field.Elem, tr *transcript.Transcript, params Params, layer0 func(pos int) (field.Elem, error)) error {
	if params.Queries <= 0 {
		params = DefaultParams
	}
	if n <= 0 || n&(n-1) != 0 || degreeBound <= 0 || degreeBound >= n {
		return fmt.Errorf("%w: bad parameters", ErrReject)
	}
	// Reconstruct the fold schedule.
	numLayers := 0
	bound := degreeBound
	size := n
	for bound > params.FinalDegree && size > 2 {
		numLayers++
		bound /= 2
		size /= 2
	}
	if len(proof.Roots) != numLayers {
		return fmt.Errorf("%w: %d layers, want %d", ErrReject, len(proof.Roots), numLayers)
	}
	if len(proof.Final) > bound {
		return fmt.Errorf("%w: final polynomial degree %d exceeds bound %d", ErrReject, len(proof.Final)-1, bound)
	}
	betas := make([]field.Elem, numLayers)
	for i, root := range proof.Roots {
		tr.Append("fri-root", root[:])
		betas[i] = tr.ChallengeElem("fri-beta")
	}
	tr.AppendElems("fri-final", proof.Final...)
	positions := tr.ChallengeIndices("fri-query", params.Queries, n/2)
	if len(proof.Queries) != len(positions) {
		return fmt.Errorf("%w: %d queries, want %d", ErrReject, len(proof.Queries), len(positions))
	}

	logN := 0
	for 1<<logN < n {
		logN++
	}
	inv2 := field.Inv(field.New(2))
	for qi, q := range positions {
		qp := &proof.Queries[qi]
		if len(qp.Openings) != numLayers {
			return fmt.Errorf("%w: query %d has %d openings", ErrReject, qi, len(qp.Openings))
		}
		j := q
		layerSize := n
		layerShift := shift
		layerLog := logN
		var carry field.Elem
		haveCarry := false
		for li := 0; li < numLayers; li++ {
			half := layerSize / 2
			pos := j % half
			op := &qp.Openings[li]
			leaf := merkle.LeafHash(leafBytes(op.Lo, op.Hi))
			if !merkle.Verify(proof.Roots[li], leaf, merkle.Proof{Index: pos, Path: op.Path}) {
				return fmt.Errorf("%w: query %d layer %d merkle", ErrReject, qi, li)
			}
			if li == 0 && layer0 != nil {
				for _, chk := range []struct {
					pos int
					val field.Elem
				}{{pos, op.Lo}, {pos + half, op.Hi}} {
					want, err := layer0(chk.pos)
					if err != nil {
						return fmt.Errorf("%w: query %d: %v", ErrReject, qi, err)
					}
					if want != chk.val {
						return fmt.Errorf("%w: query %d layer-0 value mismatch at %d", ErrReject, qi, chk.pos)
					}
				}
			}
			if haveCarry {
				got := op.Lo
				if j >= half {
					got = op.Hi
				}
				if got != carry {
					return fmt.Errorf("%w: query %d fold mismatch into layer %d", ErrReject, qi, li)
				}
			}
			// Fold (lo, hi) at position pos.
			w := field.RootOfUnity(layerLog)
			x := field.Mul(layerShift, field.Exp(w, uint64(pos)))
			even := field.Mul(field.Add(op.Lo, op.Hi), inv2)
			odd := field.Mul(field.Mul(field.Sub(op.Lo, op.Hi), inv2), field.Inv(x))
			carry = field.Add(even, field.Mul(betas[li], odd))
			haveCarry = true
			j = pos
			layerSize = half
			layerShift = field.Square(layerShift)
			layerLog--
		}
		// Final check against the clear polynomial.
		w := field.RootOfUnity(layerLog)
		x := field.Mul(layerShift, field.Exp(w, uint64(j)))
		if haveCarry {
			if proof.Final.Eval(x) != carry {
				return fmt.Errorf("%w: query %d final evaluation mismatch", ErrReject, qi)
			}
		} else if layer0 != nil {
			// Degenerate case: no folding layers at all.
			want, err := layer0(j)
			if err != nil {
				return fmt.Errorf("%w: query %d: %v", ErrReject, qi, err)
			}
			if proof.Final.Eval(x) != want {
				return fmt.Errorf("%w: query %d direct final mismatch", ErrReject, qi)
			}
		}
	}
	return nil
}
