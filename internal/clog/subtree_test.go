package clog

import (
	"testing"

	"zkflow/internal/netflow"
	"zkflow/internal/vmtree"
)

func testEntries(n int) []Entry {
	c := New()
	for i := 0; i < n; i++ {
		r := netflow.Record{
			Key: netflow.FlowKey{
				SrcIP: 0x0a000000 + uint32(i), DstIP: 0x0a800000 + uint32(i%7),
				SrcPort: uint16(1024 + i), DstPort: 443, Proto: 6,
			},
			Packets: uint32(1 + i), Bytes: uint32(40 * (i + 1)),
			RTTMicros: uint32(100 + i), JitterMicros: uint32(i % 13),
		}
		c.Merge(&r)
	}
	return c.Entries()
}

// TestSubTreeMergeMatchesMonolithic is the farm-sharding contract:
// splitting the CLog commitment into aligned sub-trees and merging
// their roots reproduces the exact monolithic guest-convention root at
// every shard count, entry count (incl. non-powers of two and empty),
// and regardless of which goroutine hashed which shard.
func TestSubTreeMergeMatchesMonolithic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 64, 100} {
		entries := testEntries(n)
		words := make([][]uint32, len(entries))
		for i := range entries {
			w := entries[i].Words()
			words[i] = w[:]
		}
		want := vmtree.Root(words)
		for _, shards := range []int{1, 2, 3, 4, 7, 8, 16, 1000} {
			roots := SubTreeRoots(entries, shards)
			if got := MergeSubTreeRoots(roots); got != want {
				t.Fatalf("n=%d shards=%d: merged root != monolithic root", n, shards)
			}
		}
	}
}

// TestSubTreeRootsParallelSafe hashes shards on separate goroutines —
// the way the core prover and farm workers use the primitive — and
// checks the merge is independent of completion order.
func TestSubTreeRootsParallelSafe(t *testing.T) {
	entries := testEntries(97)
	want := MergeSubTreeRoots(SubTreeRoots(entries, 1))
	const shards = 8
	digests := LeafDigests(entries)
	sub := vmtree.SubRoots(digests, shards)
	got := make([]vmtree.Digest, len(sub))
	done := make(chan struct{})
	for i := range sub {
		go func(i int) {
			// Each goroutine recomputes its shard from the raw entries.
			got[i] = SubTreeRoots(entries, shards)[i]
			done <- struct{}{}
		}(i)
	}
	for range sub {
		<-done
	}
	if MergeSubTreeRoots(got) != want {
		t.Fatal("parallel shard hashing changed the merged root")
	}
}
