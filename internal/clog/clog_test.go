package clog

import (
	"testing"
	"testing/quick"

	"zkflow/internal/netflow"
)

func rec(src uint32, rtt uint32) netflow.Record {
	return netflow.Record{
		Key:          netflow.FlowKey{SrcIP: src, DstIP: 9, SrcPort: 80, DstPort: 443, Proto: 6},
		Packets:      10,
		Bytes:        1000,
		Dropped:      1,
		HopCount:     4,
		RTTMicros:    rtt,
		JitterMicros: rtt / 10,
	}
}

func TestMergeAccumulates(t *testing.T) {
	c := New()
	r1, r2 := rec(1, 100), rec(1, 300)
	c.Merge(&r1)
	c.Merge(&r2)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	e, ok := c.Get(r1.Key)
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Packets != 20 || e.Bytes != 2000 || e.Dropped != 2 || e.HopCount != 8 {
		t.Fatalf("sums wrong: %+v", e)
	}
	if e.RTTSum != 400 || e.RTTMax != 300 {
		t.Fatalf("rtt agg wrong: %+v", e)
	}
	if e.JitterSum != 40 || e.JitterMax != 30 {
		t.Fatalf("jitter agg wrong: %+v", e)
	}
	if e.Count != 2 {
		t.Fatalf("count = %d", e.Count)
	}
}

func TestDistinctKeysStayDistinct(t *testing.T) {
	c := New()
	for i := uint32(0); i < 10; i++ {
		r := rec(i, 100)
		c.Merge(&r)
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestEntriesSorted(t *testing.T) {
	c := New()
	for _, src := range []uint32{5, 1, 9, 3, 7} {
		r := rec(src, 100)
		c.Merge(&r)
	}
	es := c.Entries()
	for i := 1; i < len(es); i++ {
		if !es[i-1].Key.Less(es[i].Key) {
			t.Fatalf("entries not sorted at %d", i)
		}
	}
}

func TestSnapshotInvalidatedByMerge(t *testing.T) {
	c := New()
	r := rec(1, 100)
	c.Merge(&r)
	_ = c.Entries()
	r2 := rec(2, 100)
	c.Merge(&r2)
	if len(c.Entries()) != 2 {
		t.Fatal("stale snapshot returned")
	}
}

func TestWireRoundTrip(t *testing.T) {
	f := func(a, b, cnt uint32) bool {
		e := Entry{
			Key:     netflow.FlowKey{SrcIP: a, DstIP: b, SrcPort: uint16(a), DstPort: uint16(b), Proto: 17},
			Packets: a, Bytes: b, Dropped: a % 7, HopCount: b % 9,
			RTTSum: a + b, RTTMax: a | b, JitterSum: a ^ b, JitterMax: a & b, Count: cnt,
		}
		got, err := DecodeWire(e.Wire())
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeWireShort(t *testing.T) {
	if _, err := DecodeWire(make([]byte, WireBytes-1)); err == nil {
		t.Fatal("short entry accepted")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	r := rec(3, 250)
	e := FromRecord(&r)
	if FromWords(e.Words()) != e {
		t.Fatal("word round trip failed")
	}
}

func TestRootChangesWithData(t *testing.T) {
	c := New()
	r := rec(1, 100)
	c.Merge(&r)
	root1 := c.Root()
	r2 := rec(2, 100)
	c.Merge(&r2)
	if c.Root() == root1 {
		t.Fatal("root insensitive to new flow")
	}
}

func TestRootDeterministicAcrossInsertOrder(t *testing.T) {
	mk := func(order []uint32) *CLog {
		c := New()
		for _, s := range order {
			r := rec(s, 100)
			c.Merge(&r)
		}
		return c
	}
	a := mk([]uint32{1, 2, 3, 4})
	b := mk([]uint32{4, 3, 2, 1})
	if a.Root() != b.Root() {
		t.Fatal("root depends on insertion order")
	}
}

func TestClone(t *testing.T) {
	c := New()
	r := rec(1, 100)
	c.Merge(&r)
	d := c.Clone()
	r2 := rec(2, 100)
	d.Merge(&r2)
	if c.Len() != 1 || d.Len() != 2 {
		t.Fatal("clone aliases original")
	}
	// Mutating the clone's entry must not affect the original.
	r3 := rec(1, 900)
	d.Merge(&r3)
	e, _ := c.Get(r.Key)
	if e.Count != 1 {
		t.Fatal("clone shares entry pointers")
	}
}

func TestEmptyCLog(t *testing.T) {
	c := New()
	if len(c.Entries()) != 0 {
		t.Fatal("phantom entries")
	}
	_ = c.Root() // must not panic
	if len(c.Words()) != 0 {
		t.Fatal("phantom words")
	}
}

func TestEntriesWordsMatchesWords(t *testing.T) {
	c := New()
	for i := uint32(0); i < 5; i++ {
		r := rec(i, 10*i)
		c.Merge(&r)
	}
	a, b := c.Words(), EntriesWords(c.Entries())
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("content mismatch")
		}
	}
}

func TestTreeOfMatchesCLogTree(t *testing.T) {
	c := New()
	for i := uint32(0); i < 8; i++ {
		r := rec(i, 10)
		c.Merge(&r)
	}
	if c.Tree().Root() != TreeOf(c.Entries()).Root() {
		t.Fatal("tree mismatch")
	}
}
