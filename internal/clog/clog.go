// Package clog implements the combined log (CLog) of the paper: the
// per-flow aggregate dataset the prover maintains across aggregation
// rounds and the Merkle tree that commits it.
//
// The canonical aggregation policy merges every RLog record for the
// same 5-tuple by summing the additive counters (packets, bytes,
// drops, hop counts, RTT and jitter accumulate for averages) and
// keeping maxima for the bound-style SLA metrics. The canonical CLog
// layout — what the Merkle leaves commit and what guests consume — is
// the entry list sorted by flow key.
package clog

import (
	"encoding/binary"
	"fmt"
	"sort"

	"zkflow/internal/merkle"
	"zkflow/internal/netflow"
	"zkflow/internal/vmtree"
)

// Entry is one aggregated flow.
type Entry struct {
	Key       netflow.FlowKey
	Packets   uint32
	Bytes     uint32
	Dropped   uint32
	HopCount  uint32
	RTTSum    uint32
	RTTMax    uint32
	JitterSum uint32
	JitterMax uint32
	Count     uint32 // number of records merged into this entry
}

// Entry encoding sizes.
const (
	// EntryWords is the guest word count of one entry.
	EntryWords = netflow.KeyWords + 9
	// WireBytes is the storage/commitment size of one entry.
	WireBytes = 4 * EntryWords
)

// Merge folds one record into the entry under the canonical policy.
// The keys must already match.
func (e *Entry) Merge(r *netflow.Record) {
	e.Packets += r.Packets
	e.Bytes += r.Bytes
	e.Dropped += r.Dropped
	e.HopCount += r.HopCount
	e.RTTSum += r.RTTMicros
	if r.RTTMicros > e.RTTMax {
		e.RTTMax = r.RTTMicros
	}
	e.JitterSum += r.JitterMicros
	if r.JitterMicros > e.JitterMax {
		e.JitterMax = r.JitterMicros
	}
	e.Count++
}

// FromRecord creates a fresh entry from a record.
func FromRecord(r *netflow.Record) Entry {
	var e Entry
	e.Key = r.Key
	e.Merge(r)
	return e
}

// Words returns the guest encoding: key words then counters.
func (e *Entry) Words() [EntryWords]uint32 {
	k := e.Key.Words()
	return [EntryWords]uint32{
		k[0], k[1], k[2], k[3],
		e.Packets, e.Bytes, e.Dropped, e.HopCount,
		e.RTTSum, e.RTTMax, e.JitterSum, e.JitterMax, e.Count,
	}
}

// FromWords inverts Words.
func FromWords(w [EntryWords]uint32) Entry {
	return Entry{
		Key:       netflow.KeyFromWords([netflow.KeyWords]uint32{w[0], w[1], w[2], w[3]}),
		Packets:   w[4],
		Bytes:     w[5],
		Dropped:   w[6],
		HopCount:  w[7],
		RTTSum:    w[8],
		RTTMax:    w[9],
		JitterSum: w[10],
		JitterMax: w[11],
		Count:     w[12],
	}
}

// AppendWire appends the entry's wire encoding to dst.
func (e *Entry) AppendWire(dst []byte) []byte {
	w := e.Words()
	var b [WireBytes]byte
	for i, v := range w {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return append(dst, b[:]...)
}

// Wire returns the entry's wire encoding.
func (e *Entry) Wire() []byte { return e.AppendWire(nil) }

// DecodeWire parses a wire-encoded entry.
func DecodeWire(b []byte) (Entry, error) {
	if len(b) < WireBytes {
		return Entry{}, fmt.Errorf("clog: entry of %d bytes, want %d", len(b), WireBytes)
	}
	var w [EntryWords]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return FromWords(w), nil
}

// CLog is the mutable aggregate dataset. The zero value is not ready;
// use New.
type CLog struct {
	byKey  map[netflow.FlowKey]*Entry
	sorted []Entry // cached canonical snapshot
	dirty  bool
}

// New returns an empty CLog.
func New() *CLog {
	return &CLog{byKey: make(map[netflow.FlowKey]*Entry)}
}

// Clone deep-copies the CLog.
func (c *CLog) Clone() *CLog {
	out := New()
	for k, e := range c.byKey {
		cp := *e
		out.byKey[k] = &cp
	}
	out.dirty = true
	return out
}

// Len returns the number of aggregated flows.
func (c *CLog) Len() int { return len(c.byKey) }

// Merge folds a record into the dataset (Algorithm 1 lines 13-23,
// host-side reference implementation).
func (c *CLog) Merge(r *netflow.Record) {
	if e, ok := c.byKey[r.Key]; ok {
		e.Merge(r)
	} else {
		fresh := FromRecord(r)
		c.byKey[r.Key] = &fresh
	}
	c.dirty = true
}

// MergeBatch folds a batch of records.
func (c *CLog) MergeBatch(records []netflow.Record) {
	for i := range records {
		c.Merge(&records[i])
	}
}

// SetEntry installs a complete entry, replacing any existing entry
// for the same key. Used to seed a CLog from a previous round's
// committed snapshot.
func (c *CLog) SetEntry(e Entry) {
	cp := e
	c.byKey[e.Key] = &cp
	c.dirty = true
}

// Get returns the entry for a key, if present.
func (c *CLog) Get(key netflow.FlowKey) (Entry, bool) {
	e, ok := c.byKey[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Entries returns the canonical key-sorted snapshot. The returned
// slice is shared; callers must not mutate it.
func (c *CLog) Entries() []Entry {
	if c.dirty || c.sorted == nil {
		c.sorted = make([]Entry, 0, len(c.byKey))
		for _, e := range c.byKey {
			c.sorted = append(c.sorted, *e)
		}
		sort.Slice(c.sorted, func(i, j int) bool {
			return c.sorted[i].Key.Less(c.sorted[j].Key)
		})
		c.dirty = false
	}
	return c.sorted
}

// Words flattens the canonical snapshot into the guest word stream.
func (c *CLog) Words() []uint32 {
	entries := c.Entries()
	out := make([]uint32, 0, len(entries)*EntryWords)
	for i := range entries {
		w := entries[i].Words()
		out = append(out, w[:]...)
	}
	return out
}

// EntriesWords flattens an explicit entry slice (already sorted).
func EntriesWords(entries []Entry) []uint32 {
	out := make([]uint32, 0, len(entries)*EntryWords)
	for i := range entries {
		w := entries[i].Words()
		out = append(out, w[:]...)
	}
	return out
}

// Tree builds the Merkle tree over the canonical snapshot: leaf i is
// the wire encoding of sorted entry i.
func (c *CLog) Tree() *merkle.Tree {
	return TreeOf(c.Entries())
}

// TreeOf builds the Merkle tree over an explicit sorted entry slice.
func TreeOf(entries []Entry) *merkle.Tree {
	leaves := make([][]byte, len(entries))
	for i := range entries {
		leaves[i] = entries[i].Wire()
	}
	return merkle.Build(leaves)
}

// Root returns the Merkle root of the canonical snapshot. The root of
// an empty CLog is the root of the empty tree.
func (c *CLog) Root() merkle.Hash { return c.Tree().Root() }

// LeafDigests hashes each entry of a sorted snapshot into its
// guest-convention (vmtree) leaf digest — the same leaves the
// aggregation guest commits to in its journal roots.
func LeafDigests(entries []Entry) []vmtree.Digest {
	out := make([]vmtree.Digest, len(entries))
	for i := range entries {
		w := entries[i].Words()
		out[i] = vmtree.HashWords(w[:])
	}
	return out
}

// SubTreeRoots shards the canonical sorted entry list into aligned
// power-of-two sub-trees of the guest-convention commitment and
// returns each sub-tree's root. Shards can be hashed independently —
// per goroutine, per router, or per farm worker — and merged back with
// MergeSubTreeRoots; the merge equals the monolithic guest root
// (vmtree.Root over the entry words) exactly.
func SubTreeRoots(entries []Entry, shards int) []vmtree.Digest {
	return vmtree.SubRoots(LeafDigests(entries), shards)
}

// MergeSubTreeRoots folds aligned sub-tree roots to the global
// guest-convention CLog root.
func MergeSubTreeRoots(roots []vmtree.Digest) vmtree.Digest {
	return vmtree.MergeRoots(roots)
}
