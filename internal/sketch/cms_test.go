package sketch

import (
	"math/rand"
	"testing"

	"zkflow/internal/netflow"
)

func key(i uint32) netflow.FlowKey {
	return netflow.FlowKey{SrcIP: i, DstIP: i ^ 0xffff, SrcPort: uint16(i), DstPort: 443, Proto: 6}
}

func TestNeverUnderestimates(t *testing.T) {
	s := MustNew(4, 256)
	truth := map[netflow.FlowKey]uint32{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k := key(uint32(rng.Intn(300)))
		c := uint32(1 + rng.Intn(50))
		s.Add(k, c)
		truth[k] += c
	}
	for k, want := range truth {
		if got := s.Estimate(k); got < want {
			t.Fatalf("underestimate for %v: %d < %d", k, got, want)
		}
	}
}

func TestErrorBound(t *testing.T) {
	// Standard CMS guarantee: err <= e/width * L1 w.p. 1-e^-depth;
	// test a relaxed bound over many keys.
	s := MustNew(4, 1024)
	truth := map[netflow.FlowKey]uint32{}
	rng := rand.New(rand.NewSource(2))
	var l1 uint64
	for i := 0; i < 5000; i++ {
		k := key(uint32(rng.Intn(1000)))
		c := uint32(1 + rng.Intn(20))
		s.Add(k, c)
		truth[k] += c
		l1 += uint64(c)
	}
	if s.L1() != l1 {
		t.Fatalf("L1 = %d, want %d", s.L1(), l1)
	}
	bound := uint32(8 * l1 / uint64(s.Width)) // generous 8/width * L1
	bad := 0
	for k, want := range truth {
		if s.Estimate(k)-want > bound {
			bad++
		}
	}
	if bad > len(truth)/20 {
		t.Fatalf("%d/%d estimates exceed the error bound", bad, len(truth))
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := MustNew(4, 512), MustNew(4, 512), MustNew(4, 512)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		k := key(uint32(rng.Intn(100)))
		c := uint32(rng.Intn(10) + 1)
		if i%2 == 0 {
			a.Add(k, c)
		} else {
			b.Add(k, c)
		}
		u.Add(k, c)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Counters {
		if a.Counters[i] != u.Counters[i] {
			t.Fatalf("merged counter %d differs", i)
		}
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	if err := MustNew(4, 512).Merge(MustNew(4, 256)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := MustNew(2, 512).Merge(MustNew(4, 512)); err == nil {
		t.Fatal("depth mismatch accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 512); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := New(MaxDepth+1, 512); err == nil {
		t.Fatal("excess depth accepted")
	}
	if _, err := New(4, 500); err == nil {
		t.Fatal("non-power-of-two width accepted")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := MustNew(3, 128)
	s.Add(key(1), 7)
	s.Add(key(2), 9)
	got, err := FromWords(s.Words())
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth != 3 || got.Width != 128 {
		t.Fatal("dims lost")
	}
	for i := range s.Counters {
		if got.Counters[i] != s.Counters[i] {
			t.Fatalf("counter %d differs", i)
		}
	}
}

func TestFromWordsRejects(t *testing.T) {
	if _, err := FromWords(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FromWords([]uint32{4, 128, 1, 2}); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := FromWords([]uint32{4, 100}); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestHeavyHitters(t *testing.T) {
	s := MustNew(4, 1024)
	candidates := make([]netflow.FlowKey, 50)
	for i := range candidates {
		candidates[i] = key(uint32(i))
		s.Add(candidates[i], 10)
	}
	s.Add(candidates[7], 1000)
	s.Add(candidates[3], 500)
	hh := s.HeavyHitters(candidates, 400)
	if len(hh) != 2 {
		t.Fatalf("found %d heavy hitters", len(hh))
	}
	if hh[0].Key != candidates[7] || hh[1].Key != candidates[3] {
		t.Fatalf("wrong order: %+v", hh)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := MustNew(2, 64)
	s.Add(key(1), 5)
	c := s.Clone()
	c.Add(key(1), 5)
	if s.Estimate(key(1)) == c.Estimate(key(1)) {
		t.Fatal("clone aliases original")
	}
}

func TestAddRecord(t *testing.T) {
	s := MustNew(4, 256)
	rec := netflow.Record{Key: key(9), Packets: 33}
	s.AddRecord(&rec)
	if s.Estimate(key(9)) < 33 {
		t.Fatal("record packets not counted")
	}
}
