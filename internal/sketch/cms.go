// Package sketch implements Count-Min sketches over flow keys — the
// compact alternative to exact per-flow logging that the paper's
// design explicitly accommodates ("can use any logging or sketching
// algorithm", §1; cf. the sketching literature it cites: UnivMon,
// NitroSketch, TrustSketch). Routers may summarise an epoch as a
// sketch instead of raw records; sketches from many routers merge by
// counter addition, and the merge is provable in the zkVM (see
// internal/guest's sketch-merge program).
//
// The row hash is a multiply-mix over the key words using only
// operations the TinyRISC guest has (mul, xor, shift, remu), so the
// in-VM implementation is instruction-for-instruction the same
// arithmetic as this package.
package sketch

import (
	"errors"
	"fmt"

	"zkflow/internal/netflow"
)

// Default dimensions: 4 rows × 1024 counters ≈ 16 KiB per sketch,
// ε ≈ 2/1024 of the L1 mass per estimate at δ ≈ e^-4.
const (
	DefaultDepth = 4
	DefaultWidth = 1024
)

// fnvPrime drives the key mixing (FNV-1a's 32-bit prime).
const fnvPrime = 0x01000193

// rowSeeds are fixed odd per-row multipliers (public parameters).
var rowSeeds = [...]uint32{0x9e3779b1, 0x85ebca77, 0xc2b2ae3d, 0x27d4eb2f, 0x165667b1, 0xd3a2646d, 0xfd7046c5, 0xb55a4f09}

// MaxDepth is bounded by the fixed seed table.
const MaxDepth = len(rowSeeds)

// CMS is a Count-Min sketch. Counters are uint32 and saturate is NOT
// applied — totals are expected to stay well below 2^32 per epoch,
// matching the guest's wrapping arithmetic.
type CMS struct {
	Depth    int
	Width    int
	Counters []uint32 // row-major: Counters[r*Width + c]
}

// New creates an empty sketch. Width must be a power of two (the
// guest reduces with Remu; power-of-two keeps hashing uniform) and
// depth at most MaxDepth.
func New(depth, width int) (*CMS, error) {
	if depth <= 0 || depth > MaxDepth {
		return nil, fmt.Errorf("sketch: depth %d out of range [1,%d]", depth, MaxDepth)
	}
	if width <= 0 || width&(width-1) != 0 {
		return nil, fmt.Errorf("sketch: width %d is not a power of two", width)
	}
	return &CMS{Depth: depth, Width: width, Counters: make([]uint32, depth*width)}, nil
}

// MustNew is New that panics on error.
func MustNew(depth, width int) *CMS {
	c, err := New(depth, width)
	if err != nil {
		panic(err)
	}
	return c
}

// mix folds the key words into a 32-bit value (FNV-1a style; wrapping
// arithmetic identical to the guest's).
func mix(key netflow.FlowKey) uint32 {
	h := uint32(0x811c9dc5)
	for _, w := range key.Words() {
		h ^= w
		h *= fnvPrime
	}
	return h
}

// RowIndex returns the counter index for key in row r.
func (s *CMS) RowIndex(r int, key netflow.FlowKey) int {
	h := mix(key) * rowSeeds[r]
	// Take high bits (multiply-shift) then reduce.
	return int((h >> 7) % uint32(s.Width))
}

// Add increments the key's counters by count.
func (s *CMS) Add(key netflow.FlowKey, count uint32) {
	for r := 0; r < s.Depth; r++ {
		s.Counters[r*s.Width+s.RowIndex(r, key)] += count
	}
}

// AddRecord folds one NetFlow record's packet count.
func (s *CMS) AddRecord(rec *netflow.Record) {
	s.Add(rec.Key, rec.Packets)
}

// Estimate returns the Count-Min estimate (an overestimate with high
// probability, never an underestimate).
func (s *CMS) Estimate(key netflow.FlowKey) uint32 {
	est := s.Counters[s.RowIndex(0, key)]
	for r := 1; r < s.Depth; r++ {
		if v := s.Counters[r*s.Width+s.RowIndex(r, key)]; v < est {
			est = v
		}
	}
	return est
}

// Errors returned by Merge and decoding.
var (
	ErrShape = errors.New("sketch: incompatible dimensions")
	ErrShort = errors.New("sketch: truncated encoding")
)

// Merge adds another sketch's counters into s (the linear property
// that makes distributed sketching work).
func (s *CMS) Merge(o *CMS) error {
	if s.Depth != o.Depth || s.Width != o.Width {
		return fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, s.Depth, s.Width, o.Depth, o.Width)
	}
	for i, v := range o.Counters {
		s.Counters[i] += v
	}
	return nil
}

// Clone deep-copies the sketch.
func (s *CMS) Clone() *CMS {
	out := &CMS{Depth: s.Depth, Width: s.Width, Counters: make([]uint32, len(s.Counters))}
	copy(out.Counters, s.Counters)
	return out
}

// L1 returns the total mass in one row (identical for every row in a
// pure Count-Min sketch, so row 0 is authoritative).
func (s *CMS) L1() uint64 {
	var total uint64
	for _, v := range s.Counters[:s.Width] {
		total += uint64(v)
	}
	return total
}

// Words returns the guest encoding: depth, width, then counters in
// row-major order.
func (s *CMS) Words() []uint32 {
	out := make([]uint32, 0, 2+len(s.Counters))
	out = append(out, uint32(s.Depth), uint32(s.Width))
	out = append(out, s.Counters...)
	return out
}

// FromWords inverts Words.
func FromWords(words []uint32) (*CMS, error) {
	if len(words) < 2 {
		return nil, ErrShort
	}
	depth, width := int(words[0]), int(words[1])
	s, err := New(depth, width)
	if err != nil {
		return nil, err
	}
	if len(words) != 2+depth*width {
		return nil, fmt.Errorf("%w: %d words for %dx%d", ErrShort, len(words), depth, width)
	}
	copy(s.Counters, words[2:])
	return s, nil
}

// HeavyHitter is a flow whose estimated count crosses a threshold.
type HeavyHitter struct {
	Key      netflow.FlowKey
	Estimate uint32
}

// HeavyHitters screens candidate keys (Count-Min cannot enumerate
// keys itself; candidates come from the flow population or a sample)
// and returns those with estimates >= threshold, highest first.
func (s *CMS) HeavyHitters(candidates []netflow.FlowKey, threshold uint32) []HeavyHitter {
	var out []HeavyHitter
	for _, k := range candidates {
		if est := s.Estimate(k); est >= threshold {
			out = append(out, HeavyHitter{Key: k, Estimate: est})
		}
	}
	// Insertion sort by estimate descending (candidate lists are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Estimate > out[j-1].Estimate; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RowSeed exposes the public per-row multiplier (the guest compiler
// embeds these as immediates).
func RowSeed(r int) uint32 { return rowSeeds[r] }

// MixBasis exposes the FNV offset basis for the guest compiler.
const MixBasis uint32 = 0x811c9dc5

// MixPrime exposes the FNV prime for the guest compiler.
const MixPrime uint32 = fnvPrime
