package guest

import (
	"sync"

	"zkflow/internal/zkvm"
)

var (
	pcOnce sync.Once
	pcProg *zkvm.Program
)

// PrecompileHashChainProgram returns a guest that reads an iteration
// count n and a 16-word block, then applies the SysHash precompile n
// times in place (block[0:8] <- SHA256(block[0:16]) words, rest
// unchanged each round reads all 16), journalling the first result
// word. It is the precompile-accelerated counterpart of
// SoftSHA256ChainProgram for the E6 ablation.
func PrecompileHashChainProgram() *zkvm.Program {
	pcOnce.Do(func() {
		a := zkvm.NewAssembler()
		const buf = 100
		a.ReadInput(zkvm.R13) // n
		for i := 0; i < 16; i++ {
			a.Ecall(zkvm.SysRead)
			a.Sw(zkvm.R1, zkvm.R0, uint32(buf+i))
		}
		a.Label("loop")
		a.Beq(zkvm.R13, zkvm.R0, "done")
		a.Li(zkvm.R1, buf)
		a.Li(zkvm.R2, 16)
		a.Li(zkvm.R3, buf)
		a.Ecall(zkvm.SysHash)
		a.Addi(zkvm.R13, zkvm.R13, ^uint32(0))
		a.J("loop")
		a.Label("done")
		a.Lw(zkvm.R1, zkvm.R0, buf)
		a.Ecall(zkvm.SysJournal)
		a.HaltCode(0)
		pcProg = a.MustAssemble()
	})
	return pcProg
}
