package guest

import (
	"math/rand"
	"testing"

	"zkflow/internal/netflow"
	"zkflow/internal/sketch"
	"zkflow/internal/zkvm"
)

const (
	skTestDepth = 4
	skTestWidth = 128
)

func skKey(i uint32) netflow.FlowKey {
	return netflow.FlowKey{SrcIP: i, DstIP: i * 3, SrcPort: uint16(i), DstPort: 80, Proto: 17}
}

// buildSketchBatches creates per-router sketches over random flows.
func buildSketchBatches(seed int64, routers int) ([]SketchBatch, *sketch.CMS) {
	rng := rand.New(rand.NewSource(seed))
	merged := sketch.MustNew(skTestDepth, skTestWidth)
	var batches []SketchBatch
	for r := 0; r < routers; r++ {
		s := sketch.MustNew(skTestDepth, skTestWidth)
		for i := 0; i < 200; i++ {
			k := skKey(uint32(rng.Intn(64)))
			c := uint32(1 + rng.Intn(9))
			s.Add(k, c)
			merged.Add(k, c)
		}
		batches = append(batches, SketchBatch{
			ID:         uint32(r),
			Commitment: CommitSketch(s),
			Sketch:     s,
		})
	}
	return batches, merged
}

func TestSketchMergeDifferential(t *testing.T) {
	batches, merged := buildSketchBatches(1, 3)
	queries := []netflow.FlowKey{skKey(1), skKey(5), skKey(63), skKey(999)}
	prog := SketchMergeProgram(skTestDepth, skTestWidth)
	ex, err := zkvm.Execute(prog, SketchInput(batches, queries), zkvm.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("exit %d", ex.ExitCode)
	}
	j, err := ParseSketchJournal(ex.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if j.MergedDigest != CommitSketch(merged) {
		t.Fatal("merged sketch digest differs from host-side merge")
	}
	for i, q := range queries {
		if j.Queries[i] != q {
			t.Fatalf("query %d key mismatch", i)
		}
		if j.Estimates[i] != merged.Estimate(q) {
			t.Fatalf("query %d: guest %d, host %d", i, j.Estimates[i], merged.Estimate(q))
		}
	}
}

func TestSketchMergeAbortsOnTamper(t *testing.T) {
	batches, _ := buildSketchBatches(2, 2)
	batches[1].Sketch.Counters[17]++ // modify after commitment
	prog := SketchMergeProgram(skTestDepth, skTestWidth)
	ex, err := zkvm.Execute(prog, SketchInput(batches, nil), zkvm.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != SketchAbortCommit {
		t.Fatalf("exit %d, want SketchAbortCommit", ex.ExitCode)
	}
}

func TestSketchMergeAbortsOnShape(t *testing.T) {
	// A committed sketch of the wrong dimensions must be rejected even
	// though its hash matches.
	s := sketch.MustNew(2, skTestWidth) // wrong depth
	batches := []SketchBatch{{ID: 0, Commitment: CommitSketch(s), Sketch: s}}
	prog := SketchMergeProgram(skTestDepth, skTestWidth)
	// The input tape length differs per dims; feed the words the guest
	// expects by padding the tape with the smaller sketch followed by
	// zeros (the guest reads the compiled-in word count).
	input := SketchInput(batches, nil)
	for len(input) < 1+8+2+skTestDepth*skTestWidth+1 {
		input = append(input, 0)
	}
	ex, err := zkvm.Execute(prog, input, zkvm.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode == 0 {
		t.Fatal("wrong-shape sketch accepted")
	}
}

func TestSketchMergeProveVerify(t *testing.T) {
	batches, merged := buildSketchBatches(3, 2)
	queries := []netflow.FlowKey{skKey(7)}
	prog := SketchMergeProgram(skTestDepth, skTestWidth)
	r, err := zkvm.Prove(prog, SketchInput(batches, queries), zkvm.ProveOptions{Checks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := zkvm.Verify(prog, r, zkvm.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	j, err := ParseSketchJournal(r.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if j.Estimates[0] != merged.Estimate(skKey(7)) {
		t.Fatal("proven estimate differs from host merge")
	}
}

func TestSketchImageIDBindsDims(t *testing.T) {
	if SketchMergeProgram(4, 128).ID() == SketchMergeProgram(4, 256).ID() {
		t.Fatal("different dims share an image ID")
	}
}

func TestSketchEmpty(t *testing.T) {
	prog := SketchMergeProgram(skTestDepth, skTestWidth)
	ex, err := zkvm.Execute(prog, SketchInput(nil, nil), zkvm.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("exit %d", ex.ExitCode)
	}
	j, err := ParseSketchJournal(ex.Journal)
	if err != nil {
		t.Fatal(err)
	}
	empty := sketch.MustNew(skTestDepth, skTestWidth)
	if j.MergedDigest != CommitSketch(empty) {
		t.Fatal("empty merge digest wrong")
	}
}

func TestParseSketchJournalRejects(t *testing.T) {
	if _, err := ParseSketchJournal(nil); err == nil {
		t.Fatal("empty accepted")
	}
	words := make([]uint32, 4)
	words[0] = 0xffffffff
	if _, err := ParseSketchJournal(words); err == nil {
		t.Fatal("implausible accepted")
	}
}
