package guest

import (
	"fmt"

	"zkflow/internal/netflow"
	"zkflow/internal/sketch"
	"zkflow/internal/vmtree"
	"zkflow/internal/zkvm"
)

// This file implements the provable sketch-merge path: routers commit
// to Count-Min sketches instead of raw records (the "any logging or
// sketching algorithm" claim of the paper's §1), and the guest
// verifies each sketch against its published commitment, merges the
// counters in-VM, answers point queries from the merged sketch, and
// journals the merged sketch's digest. The sketch arithmetic (FNV mix,
// multiply-shift row hash) is identical, instruction for instruction,
// to internal/sketch.

// SketchAbortCommit is the abort code for a sketch whose hash does
// not match its commitment; SketchAbortShape for dimension mismatch.
const (
	SketchAbortCommit = 11
	SketchAbortShape  = 12
)

// Sketch guest memory map (word addresses).
const (
	skCommit = 64 // 8w claimed commitment
	skDigest = 72 // 8w computed digest
	skMerged = 3000
)

// SketchMergeProgram compiles a merge guest for fixed sketch
// dimensions. The dimensions are embedded as immediates, so the
// receipt's image ID binds them.
func SketchMergeProgram(depth, width int) *zkvm.Program {
	dw := depth * width
	sketchWords := uint32(2 + dw)
	bufBase := uint32(skMerged + 2 + dw + 16)

	a := zkvm.NewAssembler()
	a.Comment("merged sketch header")
	a.Li(zkvm.R2, uint32(depth))
	a.Sw(zkvm.R2, zkvm.R0, skMerged)
	a.Li(zkvm.R2, uint32(width))
	a.Sw(zkvm.R2, zkvm.R0, skMerged+1)

	a.Comment("read router count")
	a.Ecall(zkvm.SysRead)
	a.Ecall(zkvm.SysJournal)
	a.Mov(zkvm.R10, zkvm.R1) // nRouters
	a.Li(zkvm.R8, 0)         // router index

	a.Label("router.loop")
	a.Beq(zkvm.R8, zkvm.R10, "router.done")
	for k := uint32(0); k < 8; k++ {
		a.Ecall(zkvm.SysRead)
		a.Ecall(zkvm.SysJournal)
		a.Sw(zkvm.R1, zkvm.R0, skCommit+k)
	}
	// Read the sketch into the buffer.
	a.Li(zkvm.R9, bufBase)
	a.Li(zkvm.R11, bufBase+sketchWords)
	a.Label("router.read")
	a.Beq(zkvm.R9, zkvm.R11, "router.hash")
	a.Ecall(zkvm.SysRead)
	a.Sw(zkvm.R1, zkvm.R9, 0)
	a.Addi(zkvm.R9, zkvm.R9, 1)
	a.J("router.read")
	a.Label("router.hash")
	a.Li(zkvm.R1, bufBase)
	a.Li(zkvm.R2, sketchWords)
	a.Li(zkvm.R3, skDigest)
	a.Ecall(zkvm.SysHash)
	a.Li(zkvm.R4, skCommit)
	a.Li(zkvm.R5, skDigest)
	a.Call("cmp8")
	a.Beq(zkvm.R6, zkvm.R0, "abort.commit")
	// Shape check: declared dims must match the compiled dims.
	a.Lw(zkvm.R2, zkvm.R0, bufBase)
	a.Li(zkvm.R3, uint32(depth))
	a.Bne(zkvm.R2, zkvm.R3, "abort.shape")
	a.Lw(zkvm.R2, zkvm.R0, bufBase+1)
	a.Li(zkvm.R3, uint32(width))
	a.Bne(zkvm.R2, zkvm.R3, "abort.shape")
	// Merge: merged[i] += sketch[i].
	a.Li(zkvm.R9, 0)
	a.Li(zkvm.R11, uint32(dw))
	a.Label("router.merge")
	a.Beq(zkvm.R9, zkvm.R11, "router.next")
	a.Li(zkvm.R2, bufBase+2)
	a.Add(zkvm.R2, zkvm.R2, zkvm.R9)
	a.Lw(zkvm.R3, zkvm.R2, 0)
	a.Li(zkvm.R2, skMerged+2)
	a.Add(zkvm.R2, zkvm.R2, zkvm.R9)
	a.Lw(zkvm.R4, zkvm.R2, 0)
	a.Add(zkvm.R4, zkvm.R4, zkvm.R3)
	a.Sw(zkvm.R4, zkvm.R2, 0)
	a.Addi(zkvm.R9, zkvm.R9, 1)
	a.J("router.merge")
	a.Label("router.next")
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("router.loop")
	a.Label("router.done")

	a.Comment("journal the merged sketch digest")
	a.Li(zkvm.R1, skMerged)
	a.Li(zkvm.R2, sketchWords)
	a.Li(zkvm.R3, skDigest)
	a.Ecall(zkvm.SysHash)
	for k := uint32(0); k < 8; k++ {
		a.Lw(zkvm.R1, zkvm.R0, skDigest+k)
		a.Ecall(zkvm.SysJournal)
	}

	a.Comment("point queries from the merged sketch")
	a.Ecall(zkvm.SysRead)
	a.Ecall(zkvm.SysJournal)
	a.Mov(zkvm.R10, zkvm.R1) // q
	a.Li(zkvm.R8, 0)
	a.Label("query.loop")
	a.Beq(zkvm.R8, zkvm.R10, "query.done")
	// h = FNV mix over the 4 key words (journalled: queries are public).
	a.Li(zkvm.R12, sketch.MixBasis)
	for k := 0; k < netflow.KeyWords; k++ {
		a.Ecall(zkvm.SysRead)
		a.Ecall(zkvm.SysJournal)
		a.Xor(zkvm.R12, zkvm.R12, zkvm.R1)
		a.Li(zkvm.R2, sketch.MixPrime)
		a.Mul(zkvm.R12, zkvm.R12, zkvm.R2)
	}
	// est = min over rows of merged[r*width + ((h*seed_r)>>7)&(width-1)]
	a.Li(zkvm.R13, 0xffffffff)
	for r := 0; r < depth; r++ {
		a.Li(zkvm.R2, sketch.RowSeed(r))
		a.Mul(zkvm.R2, zkvm.R12, zkvm.R2)
		a.Srli(zkvm.R2, zkvm.R2, 7)
		a.Andi(zkvm.R2, zkvm.R2, uint32(width-1))
		a.Addi(zkvm.R2, zkvm.R2, uint32(skMerged+2+r*width))
		a.Lw(zkvm.R3, zkvm.R2, 0)
		skip := fmt.Sprintf("query.keep.%d", r)
		a.Bgeu(zkvm.R3, zkvm.R13, skip)
		a.Mov(zkvm.R13, zkvm.R3)
		a.Label(skip)
	}
	a.Mov(zkvm.R1, zkvm.R13)
	a.Ecall(zkvm.SysJournal)
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("query.loop")
	a.Label("query.done")
	a.HaltCode(0)

	a.Label("abort.commit")
	a.HaltCode(SketchAbortCommit)
	a.Label("abort.shape")
	a.HaltCode(SketchAbortShape)

	emitSubroutines(a)
	return a.MustAssemble()
}

// SketchBatch is one router's committed sketch.
type SketchBatch struct {
	ID         uint32 // carried in the journal via ordering; informational
	Commitment vmtree.Digest
	Sketch     *sketch.CMS
}

// CommitSketch computes a sketch's canonical commitment (SHA-256 over
// its word encoding, the same bytes the guest hashes).
func CommitSketch(s *sketch.CMS) vmtree.Digest {
	return vmtree.HashWords(s.Words())
}

// SketchInput builds the merge guest's input tape.
func SketchInput(batches []SketchBatch, queries []netflow.FlowKey) []uint32 {
	var out []uint32
	out = append(out, uint32(len(batches)))
	for _, b := range batches {
		out = append(out, b.Commitment[:]...)
		out = append(out, b.Sketch.Words()...)
	}
	out = append(out, uint32(len(queries)))
	for _, k := range queries {
		w := k.Words()
		out = append(out, w[:]...)
	}
	return out
}

// SketchJournal is the decoded public output of the merge guest.
type SketchJournal struct {
	NumRouters   uint32
	Commitments  []vmtree.Digest
	MergedDigest vmtree.Digest
	Queries      []netflow.FlowKey
	Estimates    []uint32
}

// ParseSketchJournal decodes the merge guest's journal.
func ParseSketchJournal(words []uint32) (*SketchJournal, error) {
	rd := wordReader{words: words}
	var j SketchJournal
	j.NumRouters = rd.word()
	if rd.err == nil && j.NumRouters > uint32(len(words)) {
		return nil, fmt.Errorf("%w: %d routers implausible", ErrBadJournal, j.NumRouters)
	}
	for r := uint32(0); r < j.NumRouters && rd.err == nil; r++ {
		var d vmtree.Digest
		rd.digest(&d)
		j.Commitments = append(j.Commitments, d)
	}
	rd.digest(&j.MergedDigest)
	q := rd.word()
	if rd.err == nil && q > uint32(len(words)) {
		return nil, fmt.Errorf("%w: %d queries implausible", ErrBadJournal, q)
	}
	for i := uint32(0); i < q && rd.err == nil; i++ {
		var kw [netflow.KeyWords]uint32
		for k := range kw {
			kw[k] = rd.word()
		}
		j.Queries = append(j.Queries, netflow.KeyFromWords(kw))
		j.Estimates = append(j.Estimates, rd.word())
	}
	if rd.err != nil {
		return nil, rd.err
	}
	if rd.off != len(words) {
		return nil, fmt.Errorf("%w: %d trailing words", ErrBadJournal, len(words)-rd.off)
	}
	return &j, nil
}
