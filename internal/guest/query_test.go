package guest

import (
	"testing"

	"zkflow/internal/clog"
	"zkflow/internal/query"
	"zkflow/internal/trafficgen"
	"zkflow/internal/vmtree"
	"zkflow/internal/zkvm"
)

// sampleCLog builds a deterministic aggregated CLog.
func sampleCLog(seed int64, n int) []clog.Entry {
	g := trafficgen.New(trafficgen.Config{Seed: seed, NumFlows: 24, LossRate: 0.05})
	c := clog.New()
	c.MergeBatch(g.Batch(0, 0, n))
	return c.Entries()
}

// runQuery executes a query guest over entries.
func runQuery(t *testing.T, q *query.Query, entries []clog.Entry) *QueryJournal {
	t.Helper()
	prog := QueryProgram(q)
	ex, err := zkvm.Execute(prog, QueryInput(entries), zkvm.ExecOptions{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("exit %d", ex.ExitCode)
	}
	j, err := ParseQueryJournal(ex.Journal)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	return j
}

// differential compares guest results with host-side query.Eval for a
// batch of queries.
func differential(t *testing.T, entries []clog.Entry, sqls ...string) {
	t.Helper()
	words := EntryWordsOf(entries)
	wantRoot := vmtree.Root(words)
	for _, sql := range sqls {
		q := query.MustParse(sql)
		j := runQuery(t, q, entries)
		wantMatched, wantResult := q.Eval(words)
		if j.Matched != wantMatched {
			t.Errorf("%s: guest matched %d, host %d", sql, j.Matched, wantMatched)
		}
		if j.Result() != wantResult {
			t.Errorf("%s: guest result %d, host %d", sql, j.Result(), wantResult)
		}
		if j.Root != wantRoot {
			t.Errorf("%s: root mismatch", sql)
		}
		if int(j.NumEntries) != len(entries) {
			t.Errorf("%s: entry count %d", sql, j.NumEntries)
		}
	}
}

func TestQueryGuestDifferential(t *testing.T) {
	entries := sampleCLog(1, 60)
	differential(t, entries,
		"SELECT COUNT(*) FROM clogs",
		"SELECT SUM(packets) FROM clogs",
		"SELECT SUM(hop_count) FROM clogs WHERE proto = 6",
		"SELECT AVG(rtt_sum) FROM clogs WHERE packets > 100",
		"SELECT MIN(rtt_max) FROM clogs",
		"SELECT MAX(bytes) FROM clogs WHERE dropped >= 1",
		"SELECT COUNT(*) FROM clogs WHERE NOT (dst_port = 443 OR dst_port = 80)",
		"SELECT SUM(bytes) FROM clogs WHERE src_port >= 1024 AND packets < 500",
		"SELECT COUNT(*) FROM clogs WHERE rtt_max >= 20000 AND (proto = 6 OR proto = 17)",
	)
}

func TestQueryGuestPaperQuery(t *testing.T) {
	entries := sampleCLog(2, 40)
	// Pin the paper's literal query on a flow we know exists.
	k := entries[3].Key
	sql := "SELECT SUM(hop_count) FROM clogs WHERE src_ip = \"" +
		ipOf(k.SrcIP) + "\" AND dst_ip = \"" + ipOf(k.DstIP) + "\""
	differential(t, entries, sql)
}

func ipOf(v uint32) string {
	return string([]byte{}) + itoa(v>>24) + "." + itoa((v>>16)&0xff) + "." + itoa((v>>8)&0xff) + "." + itoa(v&0xff)
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestQueryGuestEmptyCLog(t *testing.T) {
	j := runQuery(t, query.MustParse("SELECT COUNT(*) FROM clogs"), nil)
	if j.Matched != 0 || j.NumEntries != 0 || j.Root != vmtree.Zero {
		t.Fatalf("empty clog journal: %+v", j)
	}
}

func TestQueryGuestMinEmptyMatch(t *testing.T) {
	entries := sampleCLog(3, 10)
	j := runQuery(t, query.MustParse("SELECT MIN(packets) FROM clogs WHERE proto = 99"), entries)
	if j.Matched != 0 || j.Result() != 0xffffffff {
		t.Fatalf("min sentinel: %+v", j)
	}
}

func TestQueryGuestSumCarry(t *testing.T) {
	// Force the 64-bit accumulator's carry path.
	var entries []clog.Entry
	for i := 0; i < 3; i++ {
		var e clog.Entry
		e.Key.SrcIP = uint32(i)
		e.Bytes = 0xffffffff
		entries = append(entries, e)
	}
	differential(t, entries, "SELECT SUM(bytes) FROM clogs")
}

func TestQueryImageIDBindsQuery(t *testing.T) {
	q1 := query.MustParse("SELECT COUNT(*) FROM clogs WHERE proto = 6")
	q2 := query.MustParse("SELECT COUNT(*) FROM clogs WHERE proto = 17")
	if QueryProgram(q1).ID() == QueryProgram(q2).ID() {
		t.Fatal("different queries share an image ID")
	}
	// Recompiling the same query must be deterministic.
	if QueryProgram(q1).ID() != QueryProgram(q1).ID() {
		t.Fatal("query compilation not deterministic")
	}
}

func TestQueryProveVerify(t *testing.T) {
	entries := sampleCLog(4, 15)
	q := query.MustParse("SELECT SUM(dropped) FROM clogs")
	prog := QueryProgram(q)
	r, err := zkvm.Prove(prog, QueryInput(entries), zkvm.ProveOptions{Checks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := zkvm.Verify(prog, r, zkvm.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	j, err := ParseQueryJournal(r.Journal)
	if err != nil {
		t.Fatal(err)
	}
	_, want := q.Eval(EntryWordsOf(entries))
	if j.Result() != want {
		t.Fatalf("result %d, want %d", j.Result(), want)
	}
}

func TestParseQueryJournalRejects(t *testing.T) {
	if _, err := ParseQueryJournal(make([]uint32, 11)); err == nil {
		t.Fatal("short journal accepted")
	}
	if _, err := ParseQueryJournal(make([]uint32, 13)); err == nil {
		t.Fatal("long journal accepted")
	}
}

func TestQueryGuestDeepPredicate(t *testing.T) {
	entries := sampleCLog(5, 20)
	sql := "SELECT COUNT(*) FROM clogs WHERE ((((proto = 6 AND packets > 0) OR " +
		"(proto = 17 AND bytes > 0)) AND NOT dropped > 1000) OR count >= 1)"
	differential(t, entries, sql)
}
