package guest

import (
	"fmt"

	"zkflow/internal/clog"
	"zkflow/internal/query"
	"zkflow/internal/vmtree"
	"zkflow/internal/zkvm"
)

// Query guest memory map: the evaluation stack for predicate codegen
// lives in low scratch memory; entries are read to recBase and leaf
// digests land just past them.
const (
	qStackBase = 200 // predicate evaluation stack (words)
	qCount     = 100 // global: entry count
	qBaseDig   = 101 // global: digest region base
)

// QueryProgram compiles a parsed query into a dedicated guest
// program. The query's constants are embedded in the instruction
// stream, so the program's image ID cryptographically identifies the
// query: a verifier recompiles the query and compares image IDs.
//
// The guest reads the CLog snapshot, rebuilds its Merkle root in-VM
// (binding the result to the aggregation chain), evaluates the
// predicate over every entry, and journals the entry count, the root,
// the matched count, and the 64-bit aggregate.
func QueryProgram(q *query.Query) *zkvm.Program {
	a := zkvm.NewAssembler()
	labels := 0
	fresh := func(prefix string) string {
		labels++
		return fmt.Sprintf("%s.%d", prefix, labels)
	}

	a.Comment("read + journal the CLog entry count")
	a.Ecall(zkvm.SysRead)
	a.Ecall(zkvm.SysJournal)
	a.Sw(zkvm.R1, zkvm.R0, qCount)
	a.Li(zkvm.R2, entryW)
	a.Mul(zkvm.R2, zkvm.R2, zkvm.R1)
	a.Li(zkvm.R3, recBase)
	a.Add(zkvm.R2, zkvm.R2, zkvm.R3)
	a.Sw(zkvm.R2, zkvm.R0, qBaseDig)

	a.Comment("read the CLog snapshot")
	a.Li(zkvm.R9, recBase)
	a.Lw(zkvm.R13, zkvm.R0, qBaseDig)
	a.Label("read.loop")
	a.Beq(zkvm.R9, zkvm.R13, "read.done")
	a.Ecall(zkvm.SysRead)
	a.Sw(zkvm.R1, zkvm.R9, 0)
	a.Addi(zkvm.R9, zkvm.R9, 1)
	a.J("read.loop")
	a.Label("read.done")

	a.Comment("rebuild the Merkle root in-VM and journal it")
	a.Li(zkvm.R4, recBase)
	a.Lw(zkvm.R5, zkvm.R0, qCount)
	a.Lw(zkvm.R6, zkvm.R0, qBaseDig)
	a.Call("leafhashes")
	a.Lw(zkvm.R4, zkvm.R0, qBaseDig)
	a.Lw(zkvm.R5, zkvm.R0, qCount)
	a.Call("reduce")
	a.Li(zkvm.R8, 0)
	a.Li(zkvm.R14, 8)
	a.Lw(zkvm.R9, zkvm.R0, qBaseDig)
	a.Label("jroot.loop")
	a.Beq(zkvm.R8, zkvm.R14, "jroot.done")
	a.Add(zkvm.R2, zkvm.R9, zkvm.R8)
	a.Lw(zkvm.R1, zkvm.R2, 0)
	a.Ecall(zkvm.SysJournal)
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("jroot.loop")
	a.Label("jroot.done")

	a.Comment("filter + aggregate")
	a.Li(zkvm.R8, recBase)            // entry cursor
	a.Lw(zkvm.R14, zkvm.R0, qBaseDig) // end
	a.Li(zkvm.R9, qStackBase)         // eval stack pointer
	a.Li(zkvm.R11, 0)                 // matched
	if q.Agg == query.AggMin {
		a.Li(zkvm.R12, 0xffffffff)
	} else {
		a.Li(zkvm.R12, 0) // accumulator low
	}
	a.Li(zkvm.R13, 0) // accumulator high
	a.Label("agg.loop")
	a.Beq(zkvm.R8, zkvm.R14, "agg.done")
	emitPredicate(a, q.Where)
	a.Addi(zkvm.R9, zkvm.R9, ^uint32(0)) // pop
	a.Lw(zkvm.R4, zkvm.R9, 0)
	a.Beq(zkvm.R4, zkvm.R0, "agg.skip")
	a.Addi(zkvm.R11, zkvm.R11, 1)
	switch q.Agg {
	case query.AggCount:
		// matched counter is the result
	case query.AggSum, query.AggAvg:
		emitFieldLoad(a, q.Field)
		a.Add(zkvm.R3, zkvm.R12, zkvm.R2)
		a.Sltu(zkvm.R4, zkvm.R3, zkvm.R2) // carry out
		a.Add(zkvm.R13, zkvm.R13, zkvm.R4)
		a.Mov(zkvm.R12, zkvm.R3)
	case query.AggMin:
		emitFieldLoad(a, q.Field)
		skip := fresh("min.skip")
		a.Bgeu(zkvm.R2, zkvm.R12, skip)
		a.Mov(zkvm.R12, zkvm.R2)
		a.Label(skip)
	case query.AggMax:
		emitFieldLoad(a, q.Field)
		skip := fresh("max.skip")
		a.Bgeu(zkvm.R12, zkvm.R2, skip)
		a.Mov(zkvm.R12, zkvm.R2)
		a.Label(skip)
	}
	a.Label("agg.skip")
	a.Addi(zkvm.R8, zkvm.R8, entryW)
	a.J("agg.loop")
	a.Label("agg.done")
	if q.Agg == query.AggCount {
		// COUNT's result is the matched counter itself; mirror it into
		// the accumulator so Result() is uniform across aggregates.
		a.Mov(zkvm.R12, zkvm.R11)
	}

	a.Comment("journal matched count and the 64-bit aggregate")
	a.Mov(zkvm.R1, zkvm.R11)
	a.Ecall(zkvm.SysJournal)
	a.Mov(zkvm.R1, zkvm.R12)
	a.Ecall(zkvm.SysJournal)
	a.Mov(zkvm.R1, zkvm.R13)
	a.Ecall(zkvm.SysJournal)
	a.HaltCode(0)

	emitSubroutines(a)
	return a.MustAssemble()
}

// emitFieldLoad loads the aggregate field of the entry at r8 into r2.
func emitFieldLoad(a *zkvm.Assembler, f query.Field) {
	a.Lw(zkvm.R2, zkvm.R8, uint32(f.Word))
	if f.Shift != 0 {
		a.Srli(zkvm.R2, zkvm.R2, f.Shift)
	}
	if f.Mask != 0 {
		a.Andi(zkvm.R2, zkvm.R2, f.Mask)
	}
}

// emitPredicate compiles the predicate to stack-machine code: the
// entry address is in r8, the evaluation stack pointer in r9, and the
// boolean result (0/1) is left on the stack. Scratch: r2-r4.
func emitPredicate(a *zkvm.Assembler, e query.Expr) {
	push := func() { // push r2
		a.Sw(zkvm.R2, zkvm.R9, 0)
		a.Addi(zkvm.R9, zkvm.R9, 1)
	}
	pop := func(reg int) {
		a.Addi(zkvm.R9, zkvm.R9, ^uint32(0))
		a.Lw(reg, zkvm.R9, 0)
	}
	switch v := e.(type) {
	case nil:
		a.Li(zkvm.R2, 1)
		push()
	case *query.Cmp:
		emitFieldLoad(a, v.Field)
		a.Li(zkvm.R3, v.Value)
		switch v.Op {
		case query.OpEq:
			a.Xor(zkvm.R2, zkvm.R2, zkvm.R3)
			a.Sltiu(zkvm.R2, zkvm.R2, 1)
		case query.OpNe:
			a.Xor(zkvm.R2, zkvm.R2, zkvm.R3)
			a.Sltu(zkvm.R2, zkvm.R0, zkvm.R2)
		case query.OpLt:
			a.Sltu(zkvm.R2, zkvm.R2, zkvm.R3)
		case query.OpGe:
			a.Sltu(zkvm.R2, zkvm.R2, zkvm.R3)
			a.Xori(zkvm.R2, zkvm.R2, 1)
		case query.OpGt:
			a.Sltu(zkvm.R2, zkvm.R3, zkvm.R2)
		case query.OpLe:
			a.Sltu(zkvm.R2, zkvm.R3, zkvm.R2)
			a.Xori(zkvm.R2, zkvm.R2, 1)
		}
		push()
	case *query.And:
		emitPredicate(a, v.L)
		emitPredicate(a, v.R)
		pop(zkvm.R3)
		pop(zkvm.R2)
		a.And(zkvm.R2, zkvm.R2, zkvm.R3)
		push()
	case *query.Or:
		emitPredicate(a, v.L)
		emitPredicate(a, v.R)
		pop(zkvm.R3)
		pop(zkvm.R2)
		a.Or(zkvm.R2, zkvm.R2, zkvm.R3)
		push()
	case *query.Not:
		emitPredicate(a, v.E)
		pop(zkvm.R2)
		a.Xori(zkvm.R2, zkvm.R2, 1)
		push()
	default:
		panic(fmt.Sprintf("guest: unknown expression %T", e))
	}
}

// QueryInput builds the query guest's input tape from a CLog
// snapshot (which must be the canonical sorted entries).
func QueryInput(entries []clog.Entry) []uint32 {
	out := make([]uint32, 0, 1+len(entries)*entryW)
	out = append(out, uint32(len(entries)))
	out = append(out, clog.EntriesWords(entries)...)
	return out
}

// QueryJournal is the decoded public output of a query guest.
type QueryJournal struct {
	NumEntries uint32
	Root       vmtree.Digest
	Matched    uint32
	Lo, Hi     uint32
}

// Result returns the 64-bit aggregate value.
func (j *QueryJournal) Result() uint64 { return uint64(j.Hi)<<32 | uint64(j.Lo) }

// Avg returns the average for AVG queries (0 if nothing matched).
func (j *QueryJournal) Avg() float64 {
	if j.Matched == 0 {
		return 0
	}
	return float64(j.Result()) / float64(j.Matched)
}

// ParseQueryJournal decodes a query guest journal.
func ParseQueryJournal(words []uint32) (*QueryJournal, error) {
	if len(words) != 12 {
		return nil, fmt.Errorf("%w: query journal has %d words, want 12", ErrBadJournal, len(words))
	}
	var j QueryJournal
	rd := wordReader{words: words}
	j.NumEntries = rd.word()
	rd.digest(&j.Root)
	j.Matched = rd.word()
	j.Lo = rd.word()
	j.Hi = rd.word()
	return &j, rd.err
}
