package guest

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"zkflow/internal/zkvm"
)

func testBlock() [16]uint32 {
	var b [16]uint32
	for i := range b {
		b[i] = uint32(i*0x01010101 + 7)
	}
	return b
}

func TestRefCompressMatchesStdlib(t *testing.T) {
	// One compression of a 64-byte block from the IV equals the
	// SHA-256 state after that block (checked via the digest of a
	// message that is exactly one padded block: 0-length message has
	// padding block only — instead compare against crypto/sha256 on a
	// 64-byte message minus final padding is awkward. Use the known
	// property: SHA256("") digest equals compress(IV, padBlock).
	var pad [16]uint32
	pad[0] = 0x80000000
	state := RefSHA256Compress([8]uint32{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}, pad)
	want := sha256.Sum256(nil)
	for i := 0; i < 8; i++ {
		if binary.BigEndian.Uint32(want[4*i:]) != state[i] {
			t.Fatalf("word %d: %#x != %#x", i, state[i], binary.BigEndian.Uint32(want[4*i:]))
		}
	}
}

func TestSoftSHA256GuestDifferential(t *testing.T) {
	prog := SoftSHA256ChainProgram()
	for _, n := range []uint32{0, 1, 2, 5} {
		ex, err := zkvm.Execute(prog, SoftSHA256Input(n, testBlock()), zkvm.ExecOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ex.ExitCode != 0 {
			t.Fatalf("n=%d: exit %d", n, ex.ExitCode)
		}
		want := RefSHA256Chain(n, testBlock())
		if len(ex.Journal) != 8 {
			t.Fatalf("n=%d: journal %d words", n, len(ex.Journal))
		}
		for i := 0; i < 8; i++ {
			if ex.Journal[i] != want[i] {
				t.Fatalf("n=%d word %d: guest %#x, reference %#x", n, i, ex.Journal[i], want[i])
			}
		}
	}
}

func TestSoftSHA256CycleCount(t *testing.T) {
	prog := SoftSHA256ChainProgram()
	ex1, err := zkvm.Execute(prog, SoftSHA256Input(1, testBlock()), zkvm.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := zkvm.Execute(prog, SoftSHA256Input(2, testBlock()), zkvm.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perHash := len(ex2.Rows) - len(ex1.Rows)
	// A software SHA-256 compression should cost thousands of cycles
	// (that is the whole point of precompiles).
	if perHash < 2000 || perHash > 20000 {
		t.Fatalf("cycles per compression = %d, outside plausible range", perHash)
	}
	t.Logf("software SHA-256 compression: %d cycles", perHash)
}

func TestSoftSHA256ProveVerify(t *testing.T) {
	prog := SoftSHA256ChainProgram()
	r, err := zkvm.Prove(prog, SoftSHA256Input(1, testBlock()), zkvm.ProveOptions{Checks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := zkvm.Verify(prog, r, zkvm.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
}
