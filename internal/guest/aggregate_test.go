package guest

import (
	"errors"
	"testing"

	"zkflow/internal/clog"
	"zkflow/internal/ledger"
	"zkflow/internal/netflow"
	"zkflow/internal/trafficgen"
	"zkflow/internal/vmtree"
	"zkflow/internal/zkvm"
)

// commitOf computes a batch's commitment in guest digest form.
func commitOf(recs []netflow.Record) vmtree.Digest {
	return vmtree.FromBytes(ledger.CommitRecords(recs))
}

// genBatches produces deterministic per-router batches.
func genBatches(seed int64, routers, perRouter int) []RouterBatch {
	gens := trafficgen.PerRouter(trafficgen.Config{Seed: seed, NumFlows: 32, Routers: routers, LossRate: 0.02})
	out := make([]RouterBatch, routers)
	for i, g := range gens {
		recs := g.Batch(uint32(i), 0, perRouter)
		out[i] = RouterBatch{ID: uint32(i), Commitment: commitOf(recs), Records: recs}
	}
	return out
}

// runAgg executes the aggregation guest and returns the execution.
func runAgg(t *testing.T, in *AggInput) (*zkvm.Execution, error) {
	t.Helper()
	return zkvm.Execute(AggregationProgram(), in.Words(), zkvm.ExecOptions{})
}

func prevRootOf(entries []clog.Entry) vmtree.Digest {
	return vmtree.Root(EntryWordsOf(entries))
}

func TestAggregationGenesisRound(t *testing.T) {
	batches := genBatches(1, 4, 10)
	in := &AggInput{Routers: batches} // zero prev root, empty prev
	ex, err := runAgg(t, in)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("guest aborted with code %d", ex.ExitCode)
	}
	j, err := ParseAggJournal(ex.Journal)
	if err != nil {
		t.Fatalf("parse journal: %v", err)
	}
	// Differential check against the host-side reference.
	var all [][]netflow.Record
	for _, b := range batches {
		all = append(all, b.Records)
	}
	want := ReferenceAggregate(nil, all...)
	if int(j.NewCount) != len(want) {
		t.Fatalf("guest produced %d entries, reference %d", j.NewCount, len(want))
	}
	wantRoot := prevRootOf(want)
	if j.NewRoot != wantRoot {
		t.Fatalf("guest root %v, reference %v", j.NewRoot.Bytes(), wantRoot.Bytes())
	}
	// Leaf digests must match the reference entries in order.
	wantDigs := vmtree.LeafDigests(EntryWordsOf(want))
	for i := range wantDigs {
		if j.LeafDigests[i] != wantDigs[i] {
			t.Fatalf("leaf digest %d mismatch", i)
		}
	}
	if j.NumRecords != 40 || j.NumRouters != 4 || j.PrevCount != 0 {
		t.Fatalf("journal header: %+v", j)
	}
}

func TestAggregationSecondRound(t *testing.T) {
	round1 := genBatches(2, 4, 8)
	var all1 [][]netflow.Record
	for _, b := range round1 {
		all1 = append(all1, b.Records)
	}
	prev := ReferenceAggregate(nil, all1...)

	round2 := genBatches(3, 4, 8)
	in := &AggInput{
		PrevRoot:    prevRootOf(prev),
		Routers:     round2,
		PrevEntries: prev,
	}
	ex, err := runAgg(t, in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("abort code %d", ex.ExitCode)
	}
	j, err := ParseAggJournal(ex.Journal)
	if err != nil {
		t.Fatal(err)
	}
	var all2 [][]netflow.Record
	for _, b := range round2 {
		all2 = append(all2, b.Records)
	}
	want := ReferenceAggregate(prev, all2...)
	if int(j.NewCount) != len(want) {
		t.Fatalf("guest %d entries, reference %d", j.NewCount, len(want))
	}
	if j.NewRoot != prevRootOf(want) {
		t.Fatal("second-round root mismatch")
	}
	if j.PrevRoot != in.PrevRoot {
		t.Fatal("journaled prev root differs from input")
	}
}

func TestAggregationAbortsOnTamperedRecord(t *testing.T) {
	batches := genBatches(4, 2, 6)
	// Tamper AFTER commitment: flip a byte-equivalent in one record.
	batches[1].Records[3].Packets ^= 1
	in := &AggInput{Routers: batches}
	ex, err := runAgg(t, in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != AbortCommitMismatch {
		t.Fatalf("exit %d, want AbortCommitMismatch", ex.ExitCode)
	}
	// And proving refuses.
	if _, err := zkvm.Prove(AggregationProgram(), in.Words(), zkvm.ProveOptions{Checks: 2}); err == nil {
		t.Fatal("tampered input produced a receipt")
	} else {
		var abort *zkvm.GuestAbortError
		if !errors.As(err, &abort) {
			t.Fatalf("want GuestAbortError, got %v", err)
		}
	}
}

func TestAggregationAbortsOnWrongCommitment(t *testing.T) {
	batches := genBatches(5, 2, 6)
	batches[0].Commitment[0] ^= 1
	ex, err := runAgg(t, &AggInput{Routers: batches})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != AbortCommitMismatch {
		t.Fatalf("exit %d", ex.ExitCode)
	}
}

func TestAggregationAbortsOnTamperedPrevEntry(t *testing.T) {
	round1 := genBatches(6, 2, 8)
	var all [][]netflow.Record
	for _, b := range round1 {
		all = append(all, b.Records)
	}
	prev := ReferenceAggregate(nil, all...)
	root := prevRootOf(prev)
	prev[2].Bytes += 1000 // retroactive modification of the aggregate
	ex, err := runAgg(t, &AggInput{PrevRoot: root, Routers: genBatches(7, 2, 4), PrevEntries: prev})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != AbortPrevRootMismatch {
		t.Fatalf("exit %d, want AbortPrevRootMismatch", ex.ExitCode)
	}
}

func TestAggregationAbortsOnUnsortedPrev(t *testing.T) {
	round1 := genBatches(8, 2, 8)
	var all [][]netflow.Record
	for _, b := range round1 {
		all = append(all, b.Records)
	}
	prev := ReferenceAggregate(nil, all...)
	if len(prev) < 2 {
		t.Skip("need at least two entries")
	}
	prev[0], prev[1] = prev[1], prev[0]
	ex, err := runAgg(t, &AggInput{PrevRoot: prevRootOf(prev), Routers: genBatches(9, 2, 4), PrevEntries: prev})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != AbortPrevUnsorted {
		t.Fatalf("exit %d, want AbortPrevUnsorted", ex.ExitCode)
	}
}

func TestAggregationEmptyRound(t *testing.T) {
	// No routers, no records, empty prev: produces an empty CLog.
	ex, err := runAgg(t, &AggInput{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("exit %d", ex.ExitCode)
	}
	j, err := ParseAggJournal(ex.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if j.NewCount != 0 || j.NewRoot != vmtree.Zero {
		t.Fatalf("empty round journal: %+v", j)
	}
}

func TestAggregationSingleRecord(t *testing.T) {
	g := trafficgen.New(trafficgen.Config{Seed: 10, NumFlows: 4})
	recs := g.Batch(0, 0, 1)
	in := &AggInput{Routers: []RouterBatch{{ID: 0, Commitment: commitOf(recs), Records: recs}}}
	ex, err := runAgg(t, in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("exit %d", ex.ExitCode)
	}
	j, _ := ParseAggJournal(ex.Journal)
	want := ReferenceAggregate(nil, recs)
	if j.NewCount != 1 || j.NewRoot != prevRootOf(want) {
		t.Fatalf("single-record journal: %+v", j)
	}
}

func TestAggregationChainsJournalHash(t *testing.T) {
	var chain vmtree.Digest
	for i := range chain {
		chain[i] = uint32(i + 101)
	}
	batches := genBatches(11, 1, 3)
	ex, err := runAgg(t, &AggInput{PrevJournalHash: chain, Routers: batches})
	if err != nil {
		t.Fatal(err)
	}
	j, err := ParseAggJournal(ex.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if j.PrevJournalHash != chain {
		t.Fatal("chained journal hash not preserved")
	}
}

func TestAggregationDuplicateKeysAcrossRouters(t *testing.T) {
	// Both routers observe the same flow; counters must sum.
	rec := netflow.Record{
		Key:     netflow.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		Packets: 10, Bytes: 100, Dropped: 1, HopCount: 2,
		RTTMicros: 500, JitterMicros: 50, StartUnix: 1, EndUnix: 2,
	}
	r2 := rec
	r2.RouterID = 1
	r2.RTTMicros = 900
	b := []RouterBatch{
		{ID: 0, Commitment: commitOf([]netflow.Record{rec}), Records: []netflow.Record{rec}},
		{ID: 1, Commitment: commitOf([]netflow.Record{r2}), Records: []netflow.Record{r2}},
	}
	ex, err := runAgg(t, &AggInput{Routers: b})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ExitCode != 0 {
		t.Fatalf("exit %d", ex.ExitCode)
	}
	j, _ := ParseAggJournal(ex.Journal)
	if j.NewCount != 1 {
		t.Fatalf("expected 1 merged entry, got %d", j.NewCount)
	}
	want := ReferenceAggregate(nil, []netflow.Record{rec}, []netflow.Record{r2})
	if j.NewRoot != prevRootOf(want) {
		t.Fatal("merged entry root mismatch")
	}
	if want[0].RTTMax != 900 || want[0].RTTSum != 1400 || want[0].Count != 2 {
		t.Fatalf("reference policy wrong: %+v", want[0])
	}
}

func TestAggregationProveVerify(t *testing.T) {
	batches := genBatches(12, 2, 5)
	in := &AggInput{Routers: batches}
	prog := AggregationProgram()
	r, err := zkvm.Prove(prog, in.Words(), zkvm.ProveOptions{Checks: 8})
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := zkvm.Verify(prog, r, zkvm.VerifyOptions{}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, err := ParseAggJournal(r.Journal); err != nil {
		t.Fatal(err)
	}
}

func TestParseAggJournalRejectsGarbage(t *testing.T) {
	if _, err := ParseAggJournal(nil); err == nil {
		t.Fatal("empty journal accepted")
	}
	if _, err := ParseAggJournal(make([]uint32, 5)); err == nil {
		t.Fatal("truncated journal accepted")
	}
	// A huge claimed count must not cause an allocation explosion.
	words := make([]uint32, 30)
	words[18] = 0xffffffff // router count position
	if _, err := ParseAggJournal(words); err == nil {
		t.Fatal("implausible journal accepted")
	}
}

func TestReferenceAggregateMatchesCLog(t *testing.T) {
	batches := genBatches(13, 3, 10)
	var all [][]netflow.Record
	c := clog.New()
	for _, b := range batches {
		all = append(all, b.Records)
		c.MergeBatch(b.Records)
	}
	ref := ReferenceAggregate(nil, all...)
	es := c.Entries()
	if len(ref) != len(es) {
		t.Fatalf("%d vs %d entries", len(ref), len(es))
	}
	for i := range ref {
		if ref[i] != es[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, ref[i], es[i])
		}
	}
}
