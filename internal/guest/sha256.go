package guest

import (
	"math/bits"
	"sync"

	"zkflow/internal/zkvm"
)

// This file implements SHA-256 compression in TinyRISC guest assembly
// — the cost a zkVM pays for hashing *without* a precompile. RISC
// Zero's headline optimisation is replacing exactly this (thousands
// of cycles per block) with an accelerated circuit; our SysHash
// precompile plays that role. The §7 "specialized proof systems"
// benchmark (EXPERIMENTS.md E6) compares three provers on the same
// hash-chain workload: software guest hashing, precompile hashing,
// and the fastagg STARK.

// sha256K is the round-constant table.
var sha256K = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// sha256IV is the initial state.
var sha256IV = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// Guest memory map for the soft-hash program.
const (
	shState = 100 // 8 words: a..h chaining state
	shBlock = 120 // 16 words: message block
	shK     = 200 // 64 words: round constants
	shW     = 300 // 64 words: message schedule
)

var (
	softOnce sync.Once
	softProg *zkvm.Program
)

// SoftSHA256ChainProgram returns a guest that reads an iteration
// count n and a 16-word block, then applies the SHA-256 compression
// function n times (state <- Compress(state, block)) in pure TinyRISC
// code — no precompile — and journals the final 8 state words.
func SoftSHA256ChainProgram() *zkvm.Program {
	softOnce.Do(func() { softProg = buildSoftSHA256() })
	return softProg
}

// emitRotr leaves rotr(src, r) in dst using tmp as scratch.
// dst, src, tmp must be distinct registers.
func emitRotr(a *zkvm.Assembler, dst, src, tmp, r int) {
	a.Srli(dst, src, uint32(r))
	a.Slli(tmp, src, uint32(32-r))
	a.Or(dst, dst, tmp)
}

func buildSoftSHA256() *zkvm.Program {
	a := zkvm.NewAssembler()

	// Initialise the K table and the IV.
	a.Comment("materialise round constants and IV")
	for t, k := range sha256K {
		a.Li(zkvm.R2, k)
		a.Sw(zkvm.R2, zkvm.R0, uint32(shK+t))
	}
	for i, v := range sha256IV {
		a.Li(zkvm.R2, v)
		a.Sw(zkvm.R2, zkvm.R0, uint32(shState+i))
	}

	a.Comment("read iteration count and message block")
	a.ReadInput(zkvm.R13) // n iterations (kept in r13 throughout)
	for i := 0; i < 16; i++ {
		a.Ecall(zkvm.SysRead)
		a.Sw(zkvm.R1, zkvm.R0, uint32(shBlock+i))
	}

	a.Label("chain.loop")
	a.Beq(zkvm.R13, zkvm.R0, "chain.done")
	a.Call("compress")
	a.Addi(zkvm.R13, zkvm.R13, ^uint32(0)) // n--
	a.J("chain.loop")
	a.Label("chain.done")
	for i := 0; i < 8; i++ {
		a.Lw(zkvm.R1, zkvm.R0, uint32(shState+i))
		a.Ecall(zkvm.SysJournal)
	}
	a.HaltCode(0)

	// compress: one SHA-256 compression of shBlock into shState.
	// Clobbers r1-r12, r14; preserves r13 (loop counter).
	a.Label("compress")

	// Message schedule: W[0..16) = block; W[16..64) expanded.
	a.Comment("message schedule")
	a.Li(zkvm.R12, 0)
	a.Label("sched.copy")
	a.Li(zkvm.R2, 16)
	a.Beq(zkvm.R12, zkvm.R2, "sched.expand")
	a.Addi(zkvm.R2, zkvm.R12, shBlock)
	a.Lw(zkvm.R3, zkvm.R2, 0)
	a.Addi(zkvm.R2, zkvm.R12, shW)
	a.Sw(zkvm.R3, zkvm.R2, 0)
	a.Addi(zkvm.R12, zkvm.R12, 1)
	a.J("sched.copy")

	a.Label("sched.expand")
	a.Li(zkvm.R2, 64)
	a.Beq(zkvm.R12, zkvm.R2, "rounds.init")
	// s0 = rotr7(w15) ^ rotr18(w15) ^ (w15 >> 3), w15 = W[t-15]
	a.Addi(zkvm.R2, zkvm.R12, shW-15)
	a.Lw(zkvm.R4, zkvm.R2, 0)
	emitRotr(a, zkvm.R5, zkvm.R4, zkvm.R3, 7)
	emitRotr(a, zkvm.R6, zkvm.R4, zkvm.R3, 18)
	a.Xor(zkvm.R5, zkvm.R5, zkvm.R6)
	a.Srli(zkvm.R6, zkvm.R4, 3)
	a.Xor(zkvm.R5, zkvm.R5, zkvm.R6) // r5 = s0
	// s1 = rotr17(w2) ^ rotr19(w2) ^ (w2 >> 10), w2 = W[t-2]
	a.Addi(zkvm.R2, zkvm.R12, shW-2)
	a.Lw(zkvm.R4, zkvm.R2, 0)
	emitRotr(a, zkvm.R7, zkvm.R4, zkvm.R3, 17)
	emitRotr(a, zkvm.R6, zkvm.R4, zkvm.R3, 19)
	a.Xor(zkvm.R7, zkvm.R7, zkvm.R6)
	a.Srli(zkvm.R6, zkvm.R4, 10)
	a.Xor(zkvm.R7, zkvm.R7, zkvm.R6) // r7 = s1
	// W[t] = W[t-16] + s0 + W[t-7] + s1
	a.Addi(zkvm.R2, zkvm.R12, shW-16)
	a.Lw(zkvm.R4, zkvm.R2, 0)
	a.Add(zkvm.R4, zkvm.R4, zkvm.R5)
	a.Addi(zkvm.R2, zkvm.R12, shW-7)
	a.Lw(zkvm.R6, zkvm.R2, 0)
	a.Add(zkvm.R4, zkvm.R4, zkvm.R6)
	a.Add(zkvm.R4, zkvm.R4, zkvm.R7)
	a.Addi(zkvm.R2, zkvm.R12, shW)
	a.Sw(zkvm.R4, zkvm.R2, 0)
	a.Addi(zkvm.R12, zkvm.R12, 1)
	a.J("sched.expand")

	// Working registers: a..h live in memory alongside two rotating
	// scratch registers to fit the 16-register file. To keep the
	// round loop register-resident we hold (a,b,c,d) in r4-r7 and
	// (e,f,g,h) in r8-r11.
	a.Label("rounds.init")
	a.Lw(zkvm.R4, zkvm.R0, shState+0)
	a.Lw(zkvm.R5, zkvm.R0, shState+1)
	a.Lw(zkvm.R6, zkvm.R0, shState+2)
	a.Lw(zkvm.R7, zkvm.R0, shState+3)
	a.Lw(zkvm.R8, zkvm.R0, shState+4)
	a.Lw(zkvm.R9, zkvm.R0, shState+5)
	a.Lw(zkvm.R10, zkvm.R0, shState+6)
	a.Lw(zkvm.R11, zkvm.R0, shState+7)
	a.Li(zkvm.R12, 0)

	a.Label("rounds.loop")
	a.Li(zkvm.R2, 64)
	a.Beq(zkvm.R12, zkvm.R2, "rounds.done")
	// T1 = h + Sigma1(e) + Ch(e,f,g) + K[t] + W[t]
	emitRotr(a, zkvm.R14, zkvm.R8, zkvm.R3, 6)
	emitRotr(a, zkvm.R1, zkvm.R8, zkvm.R3, 11)
	a.Xor(zkvm.R14, zkvm.R14, zkvm.R1)
	emitRotr(a, zkvm.R1, zkvm.R8, zkvm.R3, 25)
	a.Xor(zkvm.R14, zkvm.R14, zkvm.R1) // r14 = Sigma1(e)
	a.And(zkvm.R1, zkvm.R8, zkvm.R9)   // e & f
	a.Xori(zkvm.R3, zkvm.R8, 0xffffffff)
	a.And(zkvm.R3, zkvm.R3, zkvm.R10) // ~e & g
	a.Xor(zkvm.R1, zkvm.R1, zkvm.R3)  // Ch
	a.Add(zkvm.R14, zkvm.R14, zkvm.R1)
	a.Add(zkvm.R14, zkvm.R14, zkvm.R11) // + h
	a.Addi(zkvm.R2, zkvm.R12, shK)
	a.Lw(zkvm.R1, zkvm.R2, 0)
	a.Add(zkvm.R14, zkvm.R14, zkvm.R1) // + K[t]
	a.Addi(zkvm.R2, zkvm.R12, shW)
	a.Lw(zkvm.R1, zkvm.R2, 0)
	a.Add(zkvm.R14, zkvm.R14, zkvm.R1) // r14 = T1
	// T2 = Sigma0(a) + Maj(a,b,c); keep T2 in r2.
	emitRotr(a, zkvm.R2, zkvm.R4, zkvm.R3, 2)
	emitRotr(a, zkvm.R1, zkvm.R4, zkvm.R3, 13)
	a.Xor(zkvm.R2, zkvm.R2, zkvm.R1)
	emitRotr(a, zkvm.R1, zkvm.R4, zkvm.R3, 22)
	a.Xor(zkvm.R2, zkvm.R2, zkvm.R1) // Sigma0(a)
	a.And(zkvm.R1, zkvm.R4, zkvm.R5)
	a.And(zkvm.R3, zkvm.R4, zkvm.R6)
	a.Xor(zkvm.R1, zkvm.R1, zkvm.R3)
	a.And(zkvm.R3, zkvm.R5, zkvm.R6)
	a.Xor(zkvm.R1, zkvm.R1, zkvm.R3) // Maj
	a.Add(zkvm.R2, zkvm.R2, zkvm.R1) // r2 = T2
	// Rotate the working variables.
	a.Mov(zkvm.R11, zkvm.R10)         // h = g
	a.Mov(zkvm.R10, zkvm.R9)          // g = f
	a.Mov(zkvm.R9, zkvm.R8)           // f = e
	a.Add(zkvm.R8, zkvm.R7, zkvm.R14) // e = d + T1
	a.Mov(zkvm.R7, zkvm.R6)           // d = c
	a.Mov(zkvm.R6, zkvm.R5)           // c = b
	a.Mov(zkvm.R5, zkvm.R4)           // b = a
	a.Add(zkvm.R4, zkvm.R14, zkvm.R2) // a = T1 + T2
	a.Addi(zkvm.R12, zkvm.R12, 1)
	a.J("rounds.loop")

	a.Label("rounds.done")
	// State += working variables.
	for i, reg := range []int{zkvm.R4, zkvm.R5, zkvm.R6, zkvm.R7, zkvm.R8, zkvm.R9, zkvm.R10, zkvm.R11} {
		a.Lw(zkvm.R2, zkvm.R0, uint32(shState+i))
		a.Add(zkvm.R2, zkvm.R2, reg)
		a.Sw(zkvm.R2, zkvm.R0, uint32(shState+i))
	}
	a.Ret()

	return a.MustAssemble()
}

// SoftSHA256Input builds the soft-hash guest's input tape.
func SoftSHA256Input(iterations uint32, block [16]uint32) []uint32 {
	out := make([]uint32, 0, 17)
	out = append(out, iterations)
	out = append(out, block[:]...)
	return out
}

// RefSHA256Compress is the host-side reference of the compression
// function, used for differential testing of the guest.
func RefSHA256Compress(state [8]uint32, block [16]uint32) [8]uint32 {
	var w [64]uint32
	copy(w[:16], block[:])
	for t := 16; t < 64; t++ {
		s0 := bits.RotateLeft32(w[t-15], -7) ^ bits.RotateLeft32(w[t-15], -18) ^ (w[t-15] >> 3)
		s1 := bits.RotateLeft32(w[t-2], -17) ^ bits.RotateLeft32(w[t-2], -19) ^ (w[t-2] >> 10)
		w[t] = w[t-16] + s0 + w[t-7] + s1
	}
	a, b, c, d, e, f, g, h := state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7]
	for t := 0; t < 64; t++ {
		S1 := bits.RotateLeft32(e, -6) ^ bits.RotateLeft32(e, -11) ^ bits.RotateLeft32(e, -25)
		ch := (e & f) ^ (^e & g)
		t1 := h + S1 + ch + sha256K[t] + w[t]
		S0 := bits.RotateLeft32(a, -2) ^ bits.RotateLeft32(a, -13) ^ bits.RotateLeft32(a, -22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := S0 + maj
		h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}
	state[0] += a
	state[1] += b
	state[2] += c
	state[3] += d
	state[4] += e
	state[5] += f
	state[6] += g
	state[7] += h
	return state
}

// RefSHA256Chain iterates the reference compression from the IV.
func RefSHA256Chain(iterations uint32, block [16]uint32) [8]uint32 {
	state := sha256IV
	for i := uint32(0); i < iterations; i++ {
		state = RefSHA256Compress(state, block)
	}
	return state
}
