// Package guest contains the zkVM guest programs of the system — the
// in-VM counterparts of the paper's RISC Zero guests — together with
// the host-side code that builds their input tapes and parses their
// journals.
//
// The aggregation guest implements Algorithm 1 of the paper: it
// recomputes each router's RLog hash and aborts on any mismatch with the
// published commitment, authenticates the previous CLog against the
// previous Merkle root by rebuilding the tree in-VM, merge-joins the
// new records into the CLog under the canonical policy, rebuilds the
// new Merkle tree in-VM (the dominant cost, as the paper reports), and
// journals the public outputs: the chained previous-journal hash, the
// old and new roots, the router commitments, and the new leaf digests.
package guest

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"zkflow/internal/clog"
	"zkflow/internal/netflow"
	"zkflow/internal/vmtree"
	"zkflow/internal/zkvm"
)

// Guest abort codes (zkVM exit codes; 0 is success).
const (
	// AbortCommitMismatch: a router's RLog hash does not match its
	// published commitment (the tamper signal of §5).
	AbortCommitMismatch = 1
	// AbortCountMismatch: per-router record counts do not sum to the
	// declared total.
	AbortCountMismatch = 2
	// AbortBadPermutation: the host's sort hint is not a permutation
	// or does not produce key-sorted records.
	AbortBadPermutation = 3
	// AbortPrevUnsorted: the previous CLog is not strictly key-sorted.
	AbortPrevUnsorted = 4
	// AbortPrevRootMismatch: the previous CLog does not hash to the
	// trusted previous root.
	AbortPrevRootMismatch = 5
)

// Guest memory map (word addresses). Low memory holds scratch and
// globals; bulk regions are laid out from recBase by the guest itself
// once it knows the input sizes.
const (
	memCommit   = 64  // 8w: current router's claimed commitment
	memDigest   = 72  // 8w: SysHash output buffer
	memPrevRoot = 120 // 8w: claimed previous CLog root

	gM        = 100 // total record count
	gPrev     = 101 // previous CLog entry count
	gNR       = 102 // number of routers
	gBaseRec  = 103
	gBasePerm = 104
	gBaseFlag = 105
	gBaseSort = 106
	gBaseNew  = 107
	gBasePrev = 108
	gBaseDig1 = 109
	gBaseDig2 = 110
	gNewCount = 111

	recBase = 4096
)

const (
	recW   = netflow.RecordWords
	entryW = clog.EntryWords
)

var (
	aggOnce    sync.Once
	aggProg    *zkvm.Program
	aggRegions []zkvm.Region
)

// AggregationProgram returns the (memoised) aggregation guest.
func AggregationProgram() *zkvm.Program {
	aggOnce.Do(func() {
		aggProg, aggRegions = buildAggregation()
	})
	return aggProg
}

// AggregationRegions returns the guest's labelled phase regions for
// cycle profiling (paper §6: "profiling with RISC Zero indicates the
// majority of this overhead stems from Merkle tree updates performed
// within the zkVM" — zkvm.Profile reproduces that analysis here).
func AggregationRegions() []zkvm.Region {
	AggregationProgram()
	return aggRegions
}

// emitSubroutines appends the shared leaf subroutines. Contract: args
// and scratch in r1-r7 (caller-saved), r8-r14 preserved, r15 link.
func emitSubroutines(a *zkvm.Assembler) {
	// cmp8(r4=A, r5=B) -> r6 = 1 if the 8-word blocks are equal else 0.
	a.Label("cmp8")
	a.Li(zkvm.R6, 1)
	a.Li(zkvm.R7, 0)
	a.Label("cmp8.loop")
	a.Li(zkvm.R2, 8)
	a.Beq(zkvm.R7, zkvm.R2, "cmp8.ret")
	a.Lw(zkvm.R2, zkvm.R4, 0)
	a.Lw(zkvm.R3, zkvm.R5, 0)
	a.Bne(zkvm.R2, zkvm.R3, "cmp8.ne")
	a.Addi(zkvm.R4, zkvm.R4, 1)
	a.Addi(zkvm.R5, zkvm.R5, 1)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("cmp8.loop")
	a.Label("cmp8.ne")
	a.Li(zkvm.R6, 0)
	a.Label("cmp8.ret")
	a.Ret()

	// keycmp(r4=A, r5=B) -> r6 = 0 equal, 1 if A<B, 2 if A>B
	// (lexicographic over the 4 key words).
	a.Label("keycmp")
	a.Li(zkvm.R7, 0)
	a.Label("keycmp.loop")
	a.Li(zkvm.R2, netflow.KeyWords)
	a.Beq(zkvm.R7, zkvm.R2, "keycmp.eq")
	a.Lw(zkvm.R2, zkvm.R4, 0)
	a.Lw(zkvm.R3, zkvm.R5, 0)
	a.Bltu(zkvm.R2, zkvm.R3, "keycmp.lt")
	a.Bltu(zkvm.R3, zkvm.R2, "keycmp.gt")
	a.Addi(zkvm.R4, zkvm.R4, 1)
	a.Addi(zkvm.R5, zkvm.R5, 1)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("keycmp.loop")
	a.Label("keycmp.eq")
	a.Li(zkvm.R6, 0)
	a.Ret()
	a.Label("keycmp.lt")
	a.Li(zkvm.R6, 1)
	a.Ret()
	a.Label("keycmp.gt")
	a.Li(zkvm.R6, 2)
	a.Ret()

	// copy13(r4=src, r5=dst) copies one record/entry-sized block.
	a.Label("copy13")
	a.Li(zkvm.R7, 0)
	a.Label("copy13.loop")
	a.Li(zkvm.R2, recW)
	a.Beq(zkvm.R7, zkvm.R2, "copy13.ret")
	a.Lw(zkvm.R2, zkvm.R4, 0)
	a.Sw(zkvm.R2, zkvm.R5, 0)
	a.Addi(zkvm.R4, zkvm.R4, 1)
	a.Addi(zkvm.R5, zkvm.R5, 1)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("copy13.loop")
	a.Label("copy13.ret")
	a.Ret()

	// initentry(r4=record, r5=entry) copies the key and zeroes the
	// nine aggregate counters.
	a.Label("initentry")
	a.Li(zkvm.R7, 0)
	a.Label("initentry.key")
	a.Li(zkvm.R2, netflow.KeyWords)
	a.Beq(zkvm.R7, zkvm.R2, "initentry.zero")
	a.Lw(zkvm.R2, zkvm.R4, 0)
	a.Sw(zkvm.R2, zkvm.R5, 0)
	a.Addi(zkvm.R4, zkvm.R4, 1)
	a.Addi(zkvm.R5, zkvm.R5, 1)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("initentry.key")
	a.Label("initentry.zero")
	a.Li(zkvm.R7, 0)
	a.Label("initentry.zloop")
	a.Li(zkvm.R2, entryW-netflow.KeyWords)
	a.Beq(zkvm.R7, zkvm.R2, "initentry.ret")
	a.Sw(zkvm.R0, zkvm.R5, 0)
	a.Addi(zkvm.R5, zkvm.R5, 1)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("initentry.zloop")
	a.Label("initentry.ret")
	a.Ret()

	// mergerec(r4=record, r5=entry) folds one record into an entry
	// under the canonical policy (must mirror clog.Entry.Merge).
	a.Label("mergerec")
	// Additive counters: packets, bytes, dropped, hop_count.
	for off := uint32(4); off < 8; off++ {
		a.Lw(zkvm.R2, zkvm.R4, off)
		a.Lw(zkvm.R3, zkvm.R5, off)
		a.Add(zkvm.R3, zkvm.R3, zkvm.R2)
		a.Sw(zkvm.R3, zkvm.R5, off)
	}
	// RTT: entry[8] += rec[8]; entry[9] = max(entry[9], rec[8]).
	a.Lw(zkvm.R2, zkvm.R4, 8)
	a.Lw(zkvm.R3, zkvm.R5, 8)
	a.Add(zkvm.R3, zkvm.R3, zkvm.R2)
	a.Sw(zkvm.R3, zkvm.R5, 8)
	a.Lw(zkvm.R3, zkvm.R5, 9)
	a.Bgeu(zkvm.R3, zkvm.R2, "mergerec.jit")
	a.Sw(zkvm.R2, zkvm.R5, 9)
	a.Label("mergerec.jit")
	// Jitter: entry[10] += rec[9]; entry[11] = max(entry[11], rec[9]).
	a.Lw(zkvm.R2, zkvm.R4, 9)
	a.Lw(zkvm.R3, zkvm.R5, 10)
	a.Add(zkvm.R3, zkvm.R3, zkvm.R2)
	a.Sw(zkvm.R3, zkvm.R5, 10)
	a.Lw(zkvm.R3, zkvm.R5, 11)
	a.Bgeu(zkvm.R3, zkvm.R2, "mergerec.cnt")
	a.Sw(zkvm.R2, zkvm.R5, 11)
	a.Label("mergerec.cnt")
	a.Lw(zkvm.R3, zkvm.R5, 12)
	a.Addi(zkvm.R3, zkvm.R3, 1)
	a.Sw(zkvm.R3, zkvm.R5, 12)
	a.Ret()

	// leafhashes(r4=entries, r5=count, r6=digests): digest[i] =
	// SHA256(entry i), via the precompile.
	a.Label("leafhashes")
	a.Li(zkvm.R7, 0)
	a.Label("leafhashes.loop")
	a.Beq(zkvm.R7, zkvm.R5, "leafhashes.ret")
	a.Mov(zkvm.R1, zkvm.R4)
	a.Li(zkvm.R2, entryW)
	a.Mov(zkvm.R3, zkvm.R6)
	a.Ecall(zkvm.SysHash)
	a.Addi(zkvm.R4, zkvm.R4, entryW)
	a.Addi(zkvm.R6, zkvm.R6, 8)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("leafhashes.loop")
	a.Label("leafhashes.ret")
	a.Ret()

	// reduce(r4=digests, r5=count): folds leaf digests in place to the
	// root at digests[0..8), padding with the zeros of fresh memory —
	// the vmtree convention.
	a.Label("reduce")
	a.Beq(zkvm.R5, zkvm.R0, "reduce.ret")
	a.Li(zkvm.R6, 1) // size
	a.Label("reduce.size")
	a.Bgeu(zkvm.R6, zkvm.R5, "reduce.levels")
	a.Slli(zkvm.R6, zkvm.R6, 1)
	a.J("reduce.size")
	a.Label("reduce.levels")
	a.Li(zkvm.R7, 1)
	a.Beq(zkvm.R6, zkvm.R7, "reduce.ret")
	a.Srli(zkvm.R5, zkvm.R6, 1) // half
	a.Li(zkvm.R7, 0)            // i
	a.Label("reduce.pair")
	a.Beq(zkvm.R7, zkvm.R5, "reduce.next")
	a.Slli(zkvm.R1, zkvm.R7, 4) // 16*i
	a.Add(zkvm.R1, zkvm.R1, zkvm.R4)
	a.Li(zkvm.R2, 16)
	a.Slli(zkvm.R3, zkvm.R7, 3) // 8*i
	a.Add(zkvm.R3, zkvm.R3, zkvm.R4)
	a.Ecall(zkvm.SysHash)
	a.Addi(zkvm.R7, zkvm.R7, 1)
	a.J("reduce.pair")
	a.Label("reduce.next")
	a.Mov(zkvm.R6, zkvm.R5)
	a.J("reduce.levels")
	a.Label("reduce.ret")
	a.Ret()
}

// buildAggregation assembles the Algorithm 1 guest.
func buildAggregation() (*zkvm.Program, []zkvm.Region) {
	a := zkvm.NewAssembler()

	// --- Phase A: header ---
	a.Comment("journal the chained previous-journal hash")
	for k := 0; k < 8; k++ {
		a.Ecall(zkvm.SysRead)
		a.Ecall(zkvm.SysJournal)
	}
	a.Comment("read + journal + stash the claimed previous root")
	for k := uint32(0); k < 8; k++ {
		a.Ecall(zkvm.SysRead)
		a.Ecall(zkvm.SysJournal)
		a.Sw(zkvm.R1, zkvm.R0, memPrevRoot+k)
	}
	a.Comment("journal the epoch this round aggregates")
	a.Ecall(zkvm.SysRead)
	a.Ecall(zkvm.SysJournal)
	for _, g := range []uint32{gNR, gM, gPrev} {
		a.Ecall(zkvm.SysRead)
		a.Ecall(zkvm.SysJournal)
		a.Sw(zkvm.R1, zkvm.R0, g)
	}
	a.Comment("compute region bases from the declared sizes")
	a.Lw(zkvm.R4, zkvm.R0, gM)
	a.Li(zkvm.R5, recW)
	a.Mul(zkvm.R5, zkvm.R4, zkvm.R5) // 13m
	a.Li(zkvm.R6, recBase)
	a.Sw(zkvm.R6, zkvm.R0, gBaseRec)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R5)
	a.Sw(zkvm.R6, zkvm.R0, gBasePerm)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R4)
	a.Sw(zkvm.R6, zkvm.R0, gBaseFlag)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R4)
	a.Sw(zkvm.R6, zkvm.R0, gBaseSort)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R5)
	a.Sw(zkvm.R6, zkvm.R0, gBaseNew)
	a.Lw(zkvm.R7, zkvm.R0, gPrev)
	a.Li(zkvm.R2, entryW)
	a.Mul(zkvm.R7, zkvm.R7, zkvm.R2) // 13p
	a.Add(zkvm.R6, zkvm.R6, zkvm.R5)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R7) // new region holds ≤ m+p entries
	a.Sw(zkvm.R6, zkvm.R0, gBasePrev)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R7)
	a.Sw(zkvm.R6, zkvm.R0, gBaseDig1)
	a.Lw(zkvm.R4, zkvm.R0, gPrev)
	a.Slli(zkvm.R4, zkvm.R4, 4) // 16p ≥ 8 * pow2(p)
	a.Add(zkvm.R6, zkvm.R6, zkvm.R4)
	a.Addi(zkvm.R6, zkvm.R6, 16)
	a.Sw(zkvm.R6, zkvm.R0, gBaseDig2)

	// --- Phase B: per-router ingest + commitment verification ---
	a.Comment("ingest per-router batches and verify hash commitments")
	a.Li(zkvm.R8, 0) // router index
	a.Lw(zkvm.R9, zkvm.R0, gBaseRec)
	a.Li(zkvm.R10, 0) // records ingested
	a.Label("router.loop")
	a.Lw(zkvm.R4, zkvm.R0, gNR)
	a.Beq(zkvm.R8, zkvm.R4, "router.done")
	a.Ecall(zkvm.SysRead) // router ID
	a.Ecall(zkvm.SysJournal)
	for k := uint32(0); k < 8; k++ {
		a.Ecall(zkvm.SysRead)
		a.Ecall(zkvm.SysJournal)
		a.Sw(zkvm.R1, zkvm.R0, memCommit+k)
	}
	a.Ecall(zkvm.SysRead) // record count
	a.Mov(zkvm.R11, zkvm.R1)
	a.Mov(zkvm.R12, zkvm.R9) // region start
	a.Li(zkvm.R13, recW)
	a.Mul(zkvm.R13, zkvm.R11, zkvm.R13)
	a.Add(zkvm.R13, zkvm.R13, zkvm.R9) // region end
	a.Label("router.words")
	a.Beq(zkvm.R9, zkvm.R13, "router.hash")
	a.Ecall(zkvm.SysRead)
	a.Sw(zkvm.R1, zkvm.R9, 0)
	a.Addi(zkvm.R9, zkvm.R9, 1)
	a.J("router.words")
	a.Label("router.hash")
	a.Add(zkvm.R10, zkvm.R10, zkvm.R11)
	a.Mov(zkvm.R1, zkvm.R12)
	a.Sub(zkvm.R2, zkvm.R13, zkvm.R12)
	a.Li(zkvm.R3, memDigest)
	a.Ecall(zkvm.SysHash)
	a.Li(zkvm.R4, memCommit)
	a.Li(zkvm.R5, memDigest)
	a.Call("cmp8")
	a.Beq(zkvm.R6, zkvm.R0, "abort.commit")
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("router.loop")
	a.Label("router.done")
	a.Lw(zkvm.R4, zkvm.R0, gM)
	a.Bne(zkvm.R10, zkvm.R4, "abort.count")

	// --- Phase C: read the sort-permutation hint ---
	a.Comment("read the host's sort permutation")
	a.Lw(zkvm.R9, zkvm.R0, gBasePerm)
	a.Lw(zkvm.R13, zkvm.R0, gBaseFlag) // = perm end
	a.Label("perm.read")
	a.Beq(zkvm.R9, zkvm.R13, "perm.done")
	a.Ecall(zkvm.SysRead)
	a.Sw(zkvm.R1, zkvm.R9, 0)
	a.Addi(zkvm.R9, zkvm.R9, 1)
	a.J("perm.read")
	a.Label("perm.done")

	// --- Phase D: apply + verify the permutation ---
	a.Comment("apply the permutation; verify bijectivity and sortedness")
	a.Li(zkvm.R8, 0) // i
	a.Lw(zkvm.R14, zkvm.R0, gM)
	a.Label("sortcopy.loop")
	a.Beq(zkvm.R8, zkvm.R14, "sortcopy.done")
	a.Lw(zkvm.R2, zkvm.R0, gBasePerm)
	a.Add(zkvm.R2, zkvm.R2, zkvm.R8)
	a.Lw(zkvm.R9, zkvm.R2, 0) // p = perm[i]
	a.Bgeu(zkvm.R9, zkvm.R14, "abort.perm")
	a.Lw(zkvm.R2, zkvm.R0, gBaseFlag)
	a.Add(zkvm.R2, zkvm.R2, zkvm.R9)
	a.Lw(zkvm.R3, zkvm.R2, 0)
	a.Bne(zkvm.R3, zkvm.R0, "abort.perm") // index reused
	a.Li(zkvm.R3, 1)
	a.Sw(zkvm.R3, zkvm.R2, 0)
	// src = rec base + 13p; dst = sort base + 13i.
	a.Li(zkvm.R4, recW)
	a.Mul(zkvm.R4, zkvm.R4, zkvm.R9)
	a.Lw(zkvm.R2, zkvm.R0, gBaseRec)
	a.Add(zkvm.R4, zkvm.R4, zkvm.R2)
	a.Li(zkvm.R5, recW)
	a.Mul(zkvm.R5, zkvm.R5, zkvm.R8)
	a.Lw(zkvm.R2, zkvm.R0, gBaseSort)
	a.Add(zkvm.R5, zkvm.R5, zkvm.R2)
	a.Call("copy13")
	// Sortedness: key(sort[i-1]) must not exceed key(sort[i]).
	a.Beq(zkvm.R8, zkvm.R0, "sortcopy.next")
	a.Li(zkvm.R5, recW)
	a.Mul(zkvm.R5, zkvm.R5, zkvm.R8)
	a.Lw(zkvm.R2, zkvm.R0, gBaseSort)
	a.Add(zkvm.R5, zkvm.R5, zkvm.R2)
	a.Addi(zkvm.R4, zkvm.R5, 0)
	a.Li(zkvm.R2, recW)
	a.Sub(zkvm.R4, zkvm.R4, zkvm.R2)
	a.Call("keycmp")
	a.Li(zkvm.R2, 2)
	a.Beq(zkvm.R6, zkvm.R2, "abort.perm")
	a.Label("sortcopy.next")
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("sortcopy.loop")
	a.Label("sortcopy.done")

	// --- Phase E: read + verify the previous CLog ---
	a.Comment("read the previous CLog; verify strict key order")
	a.Lw(zkvm.R9, zkvm.R0, gBasePrev)
	a.Lw(zkvm.R13, zkvm.R0, gBaseDig1) // = prev end
	a.Label("prev.read")
	a.Beq(zkvm.R9, zkvm.R13, "prev.sorted")
	a.Ecall(zkvm.SysRead)
	a.Sw(zkvm.R1, zkvm.R9, 0)
	a.Addi(zkvm.R9, zkvm.R9, 1)
	a.J("prev.read")
	a.Label("prev.sorted")
	a.Li(zkvm.R8, 1)
	a.Lw(zkvm.R14, zkvm.R0, gPrev)
	a.Label("prev.order")
	a.Bgeu(zkvm.R8, zkvm.R14, "prev.root")
	a.Li(zkvm.R5, entryW)
	a.Mul(zkvm.R5, zkvm.R5, zkvm.R8)
	a.Lw(zkvm.R2, zkvm.R0, gBasePrev)
	a.Add(zkvm.R5, zkvm.R5, zkvm.R2)
	a.Addi(zkvm.R4, zkvm.R5, 0)
	a.Li(zkvm.R2, entryW)
	a.Sub(zkvm.R4, zkvm.R4, zkvm.R2)
	a.Call("keycmp")
	a.Li(zkvm.R2, 1)
	a.Bne(zkvm.R6, zkvm.R2, "abort.prevsort")
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("prev.order")

	// --- Phase F: authenticate the previous root (in-VM rebuild) ---
	a.Label("prev.root")
	a.Comment("rebuild the previous Merkle tree in-VM")
	a.Lw(zkvm.R4, zkvm.R0, gBasePrev)
	a.Lw(zkvm.R5, zkvm.R0, gPrev)
	a.Lw(zkvm.R6, zkvm.R0, gBaseDig1)
	a.Call("leafhashes")
	a.Lw(zkvm.R4, zkvm.R0, gBaseDig1)
	a.Lw(zkvm.R5, zkvm.R0, gPrev)
	a.Call("reduce")
	a.Li(zkvm.R4, memPrevRoot)
	a.Lw(zkvm.R5, zkvm.R0, gBaseDig1)
	a.Call("cmp8")
	a.Beq(zkvm.R6, zkvm.R0, "abort.prevroot")

	// --- Phase G: merge-join (Algorithm 1 lines 13-23) ---
	a.Comment("merge-join sorted records with the previous CLog")
	a.Li(zkvm.R8, 0)  // i: sorted record index
	a.Li(zkvm.R10, 0) // p: prev entry index
	a.Li(zkvm.R12, 0) // n: new entry count
	a.Lw(zkvm.R9, zkvm.R0, gBaseSort)
	a.Lw(zkvm.R11, zkvm.R0, gBasePrev)
	a.Lw(zkvm.R13, zkvm.R0, gBaseNew)
	a.Lw(zkvm.R14, zkvm.R0, gM)
	a.Label("merge.loop")
	a.Bne(zkvm.R8, zkvm.R14, "merge.haverec")
	a.Lw(zkvm.R7, zkvm.R0, gPrev)
	a.Beq(zkvm.R10, zkvm.R7, "merge.done")
	a.J("merge.takeprev")
	a.Label("merge.haverec")
	a.Lw(zkvm.R7, zkvm.R0, gPrev)
	a.Beq(zkvm.R10, zkvm.R7, "merge.takerec")
	a.Mov(zkvm.R4, zkvm.R9)
	a.Mov(zkvm.R5, zkvm.R11)
	a.Call("keycmp")
	a.Li(zkvm.R2, 1)
	a.Beq(zkvm.R6, zkvm.R2, "merge.takerec")
	a.Li(zkvm.R2, 2)
	a.Beq(zkvm.R6, zkvm.R2, "merge.takeprev")
	// Equal keys: copy the prev entry, then absorb matching records.
	a.Mov(zkvm.R4, zkvm.R11)
	a.Mov(zkvm.R5, zkvm.R13)
	a.Call("copy13")
	a.Addi(zkvm.R10, zkvm.R10, 1)
	a.Addi(zkvm.R11, zkvm.R11, entryW)
	a.J("merge.absorb")
	a.Label("merge.takeprev")
	a.Mov(zkvm.R4, zkvm.R11)
	a.Mov(zkvm.R5, zkvm.R13)
	a.Call("copy13")
	a.Addi(zkvm.R10, zkvm.R10, 1)
	a.Addi(zkvm.R11, zkvm.R11, entryW)
	a.J("merge.emit")
	a.Label("merge.takerec")
	a.Mov(zkvm.R4, zkvm.R9)
	a.Mov(zkvm.R5, zkvm.R13)
	a.Call("initentry")
	a.Label("merge.absorb")
	a.Beq(zkvm.R8, zkvm.R14, "merge.emit")
	a.Mov(zkvm.R4, zkvm.R9)
	a.Mov(zkvm.R5, zkvm.R13)
	a.Call("keycmp")
	a.Bne(zkvm.R6, zkvm.R0, "merge.emit")
	a.Mov(zkvm.R4, zkvm.R9)
	a.Mov(zkvm.R5, zkvm.R13)
	a.Call("mergerec")
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.Addi(zkvm.R9, zkvm.R9, recW)
	a.J("merge.absorb")
	a.Label("merge.emit")
	a.Addi(zkvm.R12, zkvm.R12, 1)
	a.Addi(zkvm.R13, zkvm.R13, entryW)
	a.J("merge.loop")
	a.Label("merge.done")
	a.Sw(zkvm.R12, zkvm.R0, gNewCount)

	// --- Phase H: new tree + journal ---
	a.Comment("hash new leaves; journal count, digests, then the root")
	a.Lw(zkvm.R1, zkvm.R0, gNewCount)
	a.Ecall(zkvm.SysJournal)
	a.Lw(zkvm.R4, zkvm.R0, gBaseNew)
	a.Lw(zkvm.R5, zkvm.R0, gNewCount)
	a.Lw(zkvm.R6, zkvm.R0, gBaseDig2)
	a.Call("leafhashes")
	a.Li(zkvm.R8, 0)
	a.Lw(zkvm.R14, zkvm.R0, gNewCount)
	a.Slli(zkvm.R14, zkvm.R14, 3) // n*8 digest words
	a.Lw(zkvm.R9, zkvm.R0, gBaseDig2)
	a.Label("jdig.loop")
	a.Beq(zkvm.R8, zkvm.R14, "jdig.done")
	a.Add(zkvm.R2, zkvm.R9, zkvm.R8)
	a.Lw(zkvm.R1, zkvm.R2, 0)
	a.Ecall(zkvm.SysJournal)
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("jdig.loop")
	a.Label("jdig.done")
	a.Lw(zkvm.R4, zkvm.R0, gBaseDig2)
	a.Lw(zkvm.R5, zkvm.R0, gNewCount)
	a.Call("reduce")
	a.Li(zkvm.R8, 0)
	a.Li(zkvm.R14, 8)
	a.Lw(zkvm.R9, zkvm.R0, gBaseDig2)
	a.Label("jroot.loop")
	a.Beq(zkvm.R8, zkvm.R14, "jroot.done")
	a.Add(zkvm.R2, zkvm.R9, zkvm.R8)
	a.Lw(zkvm.R1, zkvm.R2, 0)
	a.Ecall(zkvm.SysJournal)
	a.Addi(zkvm.R8, zkvm.R8, 1)
	a.J("jroot.loop")
	a.Label("jroot.done")
	a.HaltCode(0)

	// --- Aborts ---
	a.Label("abort.commit")
	a.HaltCode(AbortCommitMismatch)
	a.Label("abort.count")
	a.HaltCode(AbortCountMismatch)
	a.Label("abort.perm")
	a.HaltCode(AbortBadPermutation)
	a.Label("abort.prevsort")
	a.HaltCode(AbortPrevUnsorted)
	a.Label("abort.prevroot")
	a.HaltCode(AbortPrevRootMismatch)

	emitSubroutines(a)
	return a.MustAssemble(), a.Regions()
}

// RouterBatch is one router's epoch contribution.
type RouterBatch struct {
	ID         uint32
	Commitment vmtree.Digest // published SHA-256 over the wire batch
	Records    []netflow.Record
}

// AggInput is the aggregation guest's private input tape.
type AggInput struct {
	PrevJournalHash vmtree.Digest
	PrevRoot        vmtree.Digest
	Epoch           uint32
	Routers         []RouterBatch
	PrevEntries     []clog.Entry // must be strictly key-sorted
}

// Words serialises the input tape, computing the sort-permutation
// hint over the concatenated records.
func (in *AggInput) Words() []uint32 {
	var recs []netflow.Record
	for _, r := range in.Routers {
		recs = append(recs, r.Records...)
	}
	m := len(recs)
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return recs[perm[a]].Key.Less(recs[perm[b]].Key)
	})

	out := make([]uint32, 0, 32+m*(recW+1)+len(in.PrevEntries)*entryW)
	out = append(out, in.PrevJournalHash[:]...)
	out = append(out, in.PrevRoot[:]...)
	out = append(out, in.Epoch)
	out = append(out, uint32(len(in.Routers)), uint32(m), uint32(len(in.PrevEntries)))
	for _, r := range in.Routers {
		out = append(out, r.ID)
		out = append(out, r.Commitment[:]...)
		out = append(out, uint32(len(r.Records)))
		out = append(out, netflow.BatchWords(r.Records)...)
	}
	for _, p := range perm {
		out = append(out, uint32(p))
	}
	out = append(out, clog.EntriesWords(in.PrevEntries)...)
	return out
}

// AggJournal is the decoded public output of the aggregation guest.
type AggJournal struct {
	PrevJournalHash vmtree.Digest
	PrevRoot        vmtree.Digest
	Epoch           uint32
	NumRouters      uint32
	NumRecords      uint32
	PrevCount       uint32
	RouterIDs       []uint32
	Commitments     []vmtree.Digest
	NewCount        uint32
	LeafDigests     []vmtree.Digest
	NewRoot         vmtree.Digest
}

// ErrBadJournal reports a journal that does not parse as an
// aggregation journal.
var ErrBadJournal = errors.New("guest: malformed journal")

// ParseAggJournal decodes the aggregation guest's journal words.
func ParseAggJournal(words []uint32) (*AggJournal, error) {
	rd := wordReader{words: words}
	var j AggJournal
	rd.digest(&j.PrevJournalHash)
	rd.digest(&j.PrevRoot)
	j.Epoch = rd.word()
	j.NumRouters = rd.word()
	j.NumRecords = rd.word()
	j.PrevCount = rd.word()
	if rd.err == nil && j.NumRouters > uint32(len(words)) {
		return nil, fmt.Errorf("%w: %d routers implausible", ErrBadJournal, j.NumRouters)
	}
	for r := uint32(0); r < j.NumRouters && rd.err == nil; r++ {
		j.RouterIDs = append(j.RouterIDs, rd.word())
		var d vmtree.Digest
		rd.digest(&d)
		j.Commitments = append(j.Commitments, d)
	}
	j.NewCount = rd.word()
	if rd.err == nil && j.NewCount > uint32(len(words)) {
		return nil, fmt.Errorf("%w: %d entries implausible", ErrBadJournal, j.NewCount)
	}
	for n := uint32(0); n < j.NewCount && rd.err == nil; n++ {
		var d vmtree.Digest
		rd.digest(&d)
		j.LeafDigests = append(j.LeafDigests, d)
	}
	rd.digest(&j.NewRoot)
	if rd.err != nil {
		return nil, rd.err
	}
	if rd.off != len(words) {
		return nil, fmt.Errorf("%w: %d trailing words", ErrBadJournal, len(words)-rd.off)
	}
	return &j, nil
}

// wordReader is a cursor over journal words.
type wordReader struct {
	words []uint32
	off   int
	err   error
}

func (r *wordReader) word() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.words) {
		r.err = fmt.Errorf("%w: truncated at word %d", ErrBadJournal, r.off)
		return 0
	}
	v := r.words[r.off]
	r.off++
	return v
}

func (r *wordReader) digest(d *vmtree.Digest) {
	for i := range d {
		d[i] = r.word()
	}
}

// ReferenceAggregate is the host-side model of the guest's merge: it
// returns the new CLog entries the guest will produce for the given
// previous entries and record batches. Used for differential testing
// and by the prover to prepare the next round.
func ReferenceAggregate(prev []clog.Entry, batches ...[]netflow.Record) []clog.Entry {
	c := clog.New()
	for i := range prev {
		e := prev[i]
		c.SetEntry(e)
	}
	for _, b := range batches {
		for i := range b {
			c.Merge(&b[i])
		}
	}
	out := make([]clog.Entry, len(c.Entries()))
	copy(out, c.Entries())
	return out
}

// EntryWordsOf flattens entries for vmtree hashing.
func EntryWordsOf(entries []clog.Entry) [][]uint32 {
	out := make([][]uint32, len(entries))
	for i := range entries {
		w := entries[i].Words()
		out[i] = w[:]
	}
	return out
}
