package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"zkflow/internal/netflow"
)

func rec(i uint32) netflow.Record {
	return netflow.Record{
		Key:     netflow.FlowKey{SrcIP: i, DstIP: 9, SrcPort: 80, DstPort: 443, Proto: 6},
		Packets: i, Bytes: i * 100, RouterID: i % 4,
		StartUnix: 1700000000, EndUnix: 1700000005,
	}
}

func TestAppendAndRead(t *testing.T) {
	s := Open(0)
	s.Append(1, 0, []netflow.Record{rec(1), rec(2)})
	s.Append(1, 0, []netflow.Record{rec(3)})
	got, err := s.Epoch(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestEpochReturnsCopy(t *testing.T) {
	s := Open(0)
	s.Append(1, 0, []netflow.Record{rec(1)})
	got, _ := s.Epoch(1, 0)
	got[0].Packets = 999
	again, _ := s.Epoch(1, 0)
	if again[0].Packets == 999 {
		t.Fatal("Epoch aliases internal storage")
	}
}

func TestEmptyEpoch(t *testing.T) {
	s := Open(0)
	got, err := s.Epoch(5, 2)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRetentionEviction(t *testing.T) {
	s := Open(3)
	for e := uint64(0); e < 10; e++ {
		s.Append(e, 0, []netflow.Record{rec(uint32(e))})
	}
	if _, err := s.Epoch(5, 0); !errors.Is(err, ErrEvicted) {
		t.Fatalf("epoch 5 should be evicted, got %v", err)
	}
	for e := uint64(7); e < 10; e++ {
		if _, err := s.Epoch(e, 0); err != nil {
			t.Fatalf("epoch %d evicted too early: %v", e, err)
		}
	}
	if got := s.Epochs(); len(got) != 3 || got[0] != 7 {
		t.Fatalf("retained epochs %v", got)
	}
}

// TestAppendEvictedRefused pins the silent-loss fix: appending to an
// epoch already outside the retention window used to insert the
// segment and then evict it in the same call, dropping the records
// with no error. The write must now be refused whole, with the count.
func TestAppendEvictedRefused(t *testing.T) {
	s := Open(3)
	for e := uint64(0); e < 10; e++ {
		if _, err := s.Append(e, 0, []netflow.Record{rec(uint32(e))}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Len()
	dropped, err := s.Append(2, 0, []netflow.Record{rec(90), rec(91)})
	if !errors.Is(err, ErrEvicted) {
		t.Fatalf("append to evicted epoch: err = %v, want ErrEvicted", err)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if s.Len() != before {
		t.Fatalf("evicted append changed Len: %d -> %d", before, s.Len())
	}
	// The newest retained epoch must still accept writes and report
	// zero drops.
	if dropped, err := s.Append(9, 0, []netflow.Record{rec(92)}); err != nil || dropped != 0 {
		t.Fatalf("append to retained epoch: dropped=%d err=%v", dropped, err)
	}
}

func TestUnlimitedRetention(t *testing.T) {
	s := Open(0)
	for e := uint64(0); e < 50; e++ {
		s.Append(e, 0, []netflow.Record{rec(uint32(e))})
	}
	if _, err := s.Epoch(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRouters(t *testing.T) {
	s := Open(0)
	s.Append(1, 3, []netflow.Record{rec(1)})
	s.Append(1, 1, []netflow.Record{rec(2)})
	s.Append(2, 0, []netflow.Record{rec(3)})
	got, err := s.Routers(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("routers = %v", got)
	}
	// Evicted epochs must be distinguishable from empty ones.
	e := Open(1)
	e.Append(5, 0, []netflow.Record{rec(1)})
	if _, err := e.Routers(1); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted Routers: %v", err)
	}
}

func TestLen(t *testing.T) {
	s := Open(0)
	s.Append(1, 0, []netflow.Record{rec(1), rec(2)})
	s.Append(2, 1, []netflow.Record{rec(3)})
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestConcurrentWriters(t *testing.T) {
	s := Open(0)
	var wg sync.WaitGroup
	for r := uint32(0); r < 8; r++ {
		wg.Add(1)
		go func(r uint32) {
			defer wg.Done()
			for e := uint64(0); e < 20; e++ {
				s.Append(e, r, []netflow.Record{rec(r)})
			}
		}(r)
	}
	wg.Wait()
	if s.Len() != 8*20 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := Open(4)
	for e := uint64(0); e < 3; e++ {
		for r := uint32(0); r < 2; r++ {
			s.Append(e, r, []netflow.Record{rec(uint32(e)*10 + r), rec(uint32(e)*10 + r + 100)})
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("loaded %d records, want %d", s2.Len(), s.Len())
	}
	a, _ := s.Epoch(1, 1)
	b, _ := s2.Epoch(1, 1)
	if len(a) != len(b) {
		t.Fatal("segment length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage bytes here!!"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := Open(0)
	s.Append(1, 0, []netflow.Record{rec(1)})
	path := filepath.Join(t.TempDir(), "store.bin")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("len = %d", s2.Len())
	}
}
