// Package store is the embedded telemetry log store — the repository's
// substitute for the PostgreSQL backend in the paper's testbed (see
// DESIGN.md §1). Routers append raw NetFlow records per (epoch,
// router) segment concurrently; the aggregator later reads whole
// epochs. Segments beyond the retention window are evicted, modelling
// the paper's observation that raw logs are ephemeral — only the
// published hash commitments and the aggregate survive.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"zkflow/internal/netflow"
)

// ErrEvicted reports a read of an epoch outside the retention window.
var ErrEvicted = errors.New("store: epoch evicted")

// segKey identifies one (epoch, router) segment.
type segKey struct {
	epoch  uint64
	router uint32
}

// Store is a concurrency-safe, epoch-segmented, append-only record
// store.
type Store struct {
	mu        sync.RWMutex
	segments  map[segKey][]netflow.Record
	retention int // epochs kept; 0 = unlimited
	maxEpoch  uint64
	haveEpoch bool
}

// Open creates an empty store retaining the given number of epochs
// (0 = unlimited).
func Open(retention int) *Store {
	return &Store{segments: make(map[segKey][]netflow.Record), retention: retention}
}

// Append adds records to the (epoch, router) segment and reports how
// many were refused. A write to an epoch already outside the retention
// window is refused whole — dropped is len(recs) and err wraps
// ErrEvicted — instead of being inserted and immediately evicted,
// which silently lost the records with no signal to the caller. The
// ingest path surfaces the dropped count through obs
// (ingest.records_dropped.evicted).
func (s *Store) Append(epoch uint64, router uint32, recs []netflow.Record) (dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evictedLocked(epoch) {
		return len(recs), fmt.Errorf("%w: append to epoch %d (retention %d, latest %d)",
			ErrEvicted, epoch, s.retention, s.maxEpoch)
	}
	k := segKey{epoch, router}
	s.segments[k] = append(s.segments[k], recs...)
	if !s.haveEpoch || epoch > s.maxEpoch {
		s.maxEpoch = epoch
		s.haveEpoch = true
	}
	s.evictLocked()
	return 0, nil
}

func (s *Store) evictLocked() {
	if s.retention <= 0 || !s.haveEpoch {
		return
	}
	min := int64(s.maxEpoch) - int64(s.retention) + 1
	if min <= 0 {
		return
	}
	for k := range s.segments {
		if int64(k.epoch) < min {
			delete(s.segments, k)
		}
	}
}

// evictedLocked reports whether an epoch is outside the retention
// window.
func (s *Store) evictedLocked(epoch uint64) bool {
	return s.retention > 0 && s.haveEpoch && int64(epoch) < int64(s.maxEpoch)-int64(s.retention)+1
}

// Epoch returns a copy of the records one router logged in an epoch.
// Reading an evicted epoch returns ErrEvicted; an epoch the router
// never wrote returns an empty slice.
func (s *Store) Epoch(epoch uint64, router uint32) ([]netflow.Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.evictedLocked(epoch) {
		return nil, fmt.Errorf("%w: epoch %d (retention %d, latest %d)", ErrEvicted, epoch, s.retention, s.maxEpoch)
	}
	recs := s.segments[segKey{epoch, router}]
	out := make([]netflow.Record, len(recs))
	copy(out, recs)
	return out, nil
}

// Routers lists the routers that wrote during an epoch, sorted.
// An evicted epoch returns ErrEvicted so callers can distinguish
// "expired" from "never collected".
func (s *Store) Routers(epoch uint64) ([]uint32, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.evictedLocked(epoch) {
		return nil, fmt.Errorf("%w: epoch %d", ErrEvicted, epoch)
	}
	var out []uint32
	for k := range s.segments {
		if k.epoch == epoch {
			out = append(out, k.router)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Epochs lists the retained epochs, sorted.
func (s *Store) Epochs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[uint64]bool)
	for k := range s.segments {
		seen[k.epoch] = true
	}
	out := make([]uint64, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total retained record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, recs := range s.segments {
		n += len(recs)
	}
	return n
}

// storeMagic versions the persistence encoding.
const storeMagic = 0x7a6b7374 // "zkst"

// Save serialises the store (for prover restarts between rounds).
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], storeMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.retention))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(s.segments)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Deterministic segment order.
	keys := make([]segKey, 0, len(s.segments))
	for k := range s.segments {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].epoch != keys[j].epoch {
			return keys[i].epoch < keys[j].epoch
		}
		return keys[i].router < keys[j].router
	})
	for _, k := range keys {
		recs := s.segments[k]
		var seg [20]byte
		binary.LittleEndian.PutUint64(seg[0:], k.epoch)
		binary.LittleEndian.PutUint32(seg[8:], k.router)
		binary.LittleEndian.PutUint64(seg[12:], uint64(len(recs)))
		if _, err := w.Write(seg[:]); err != nil {
			return err
		}
		if _, err := w.Write(netflow.EncodeBatch(recs)); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a store serialised by Save.
func Load(r io.Reader) (*Store, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != storeMagic {
		return nil, errors.New("store: bad magic")
	}
	s := Open(int(binary.LittleEndian.Uint32(hdr[4:])))
	nSegs := binary.LittleEndian.Uint64(hdr[8:])
	for i := uint64(0); i < nSegs; i++ {
		var seg [20]byte
		if _, err := io.ReadFull(r, seg[:]); err != nil {
			return nil, err
		}
		epoch := binary.LittleEndian.Uint64(seg[0:])
		router := binary.LittleEndian.Uint32(seg[8:])
		n := binary.LittleEndian.Uint64(seg[12:])
		if n > 1<<32 {
			return nil, fmt.Errorf("store: segment of %d records implausible", n)
		}
		buf := make([]byte, int(n)*netflow.WireBytes)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		recs, err := netflow.DecodeBatch(buf)
		if err != nil {
			return nil, err
		}
		// Save emits segments in ascending epoch order and only retained
		// ones, so a well-formed file never trips the eviction refusal;
		// a crafted or corrupted file can.
		if _, err := s.Append(epoch, router, recs); err != nil {
			return nil, fmt.Errorf("store: load segment %d/%d: %w", epoch, router, err)
		}
	}
	return s, nil
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a store from a file.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
