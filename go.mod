module zkflow

go 1.22
