package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"zkflow/internal/fold"
	"zkflow/internal/guest"
	"zkflow/internal/zkvm"
)

// FoldRow is one E19 measurement (the BENCH_PR*.json fold schema):
// the same 2000-record aggregation proved as a continuation chain at
// one segment length, then folded into a single bounded-size receipt.
// The composite columns are the unfolded baseline at the same segment
// count; the mono columns repeat the single-segment (segment_cycles=0)
// receipt on every row so each row gates self-contained — the fold
// target is fold_receipt_bytes <= 2x mono_receipt_bytes and
// fold_verify_ms flat (within 20%) across segment counts.
type FoldRow struct {
	SegmentCycles    int     `json:"segment_cycles"`
	Segments         int     `json:"segments"`
	CompositeBytes   int     `json:"composite_bytes"`
	CompositeVerMs   float64 `json:"composite_verify_ms"`
	FoldProveMs      float64 `json:"fold_prove_ms"`
	FoldReceiptBytes int     `json:"fold_receipt_bytes"`
	FoldVerifyMs     float64 `json:"fold_verify_ms"`
	MonoReceiptBytes int     `json:"mono_receipt_bytes"`
	MonoVerifyMs     float64 `json:"mono_verify_ms"`
}

// expFold is the E19 experiment: receipt size and verify time of the
// folded receipt vs. the unfolded composite as the segment count
// grows. The composite's bytes and verify time scale with segments;
// the fold's stay bounded — that flat line is the reproduction target.
func expFold(checks int) []FoldRow {
	fmt.Println("=== E19: recursive fold — receipt bytes + verify ms vs segment count (2000 records) ===")
	in := genesisInput(int64(2000), 2000)
	words := in.Words()
	prog := guest.AggregationProgram()
	par := runtime.GOMAXPROCS(0)

	// Verify times are few-millisecond quantities and the flatness gate
	// in zkflow-benchdiff is a 20% spread, so a single timing is too
	// noisy to commit: take the best of a few runs, like testing.B
	// would.
	// The folded measurement opts into the prover-trusted kind: the
	// bench just built the receipt from a composite it proved itself,
	// and the quantity under measurement is the O(1) binding verify.
	verifyMs := func(what string, r zkvm.AnyReceipt, vopts zkvm.VerifyOptions) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			if err := zkvm.VerifyAny(prog, r, vopts); err != nil {
				log.Fatalf("%s verify: %v", what, err)
			}
			if d := ms(time.Since(t0)); i == 0 || d < best {
				best = d
			}
		}
		return best
	}

	// Warm-up, then the single-segment baseline every row compares to.
	if _, err := zkvm.Prove(prog, words, zkvm.ProveOptions{Checks: checks, Parallelism: par}); err != nil {
		log.Fatal(err)
	}
	mono, err := zkvm.Prove(prog, words, zkvm.ProveOptions{Checks: checks, Parallelism: par})
	if err != nil {
		log.Fatal(err)
	}
	monoVer := verifyMs("mono", mono, zkvm.VerifyOptions{})
	fmt.Printf("single-segment baseline: receipt %d B, verify %.1f ms\n", mono.Size(), monoVer)

	var rows []FoldRow
	fmt.Printf("%14s  %9s  %14s  %13s  %12s  %14s  %13s\n",
		"segment-cycles", "segments", "composite", "comp verify", "fold prove", "folded", "fold verify")
	for _, segCycles := range []int{1 << 18, 1 << 17, 1 << 16} {
		receipt, err := zkvm.ProveAny(prog, words,
			zkvm.ProveOptions{Checks: checks, SegmentCycles: segCycles, Parallelism: par})
		if err != nil {
			log.Fatal(err)
		}
		comp, ok := receipt.(*zkvm.CompositeReceipt)
		if !ok {
			log.Fatalf("segment-cycles %d: expected a composite receipt, got %T", segCycles, receipt)
		}
		compVer := verifyMs(fmt.Sprintf("segment-cycles %d: composite", segCycles), comp, zkvm.VerifyOptions{})

		t0 := time.Now()
		fr, err := fold.Fold(prog, comp, fold.Options{Parallelism: par})
		if err != nil {
			log.Fatalf("segment-cycles %d: fold: %v", segCycles, err)
		}
		foldProve := ms(time.Since(t0))
		foldVer := verifyMs(fmt.Sprintf("segment-cycles %d: fold", segCycles), fr,
			zkvm.VerifyOptions{AcceptProverTrusted: true})

		row := FoldRow{
			SegmentCycles:    segCycles,
			Segments:         comp.NumSegments(),
			CompositeBytes:   comp.Size(),
			CompositeVerMs:   compVer,
			FoldProveMs:      foldProve,
			FoldReceiptBytes: fr.Size(),
			FoldVerifyMs:     foldVer,
			MonoReceiptBytes: mono.Size(),
			MonoVerifyMs:     monoVer,
		}
		rows = append(rows, row)
		status := ""
		if row.FoldReceiptBytes > 2*row.MonoReceiptBytes {
			status = "  << above 2x mono target"
		}
		fmt.Printf("%14d  %9d  %12d B  %10.1f ms  %9.0f ms  %12d B  %10.1f ms%s\n",
			segCycles, row.Segments, row.CompositeBytes, compVer, foldProve,
			row.FoldReceiptBytes, foldVer, status)
	}
	fmt.Println()
	return rows
}
