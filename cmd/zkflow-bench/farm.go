package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zkflow/internal/guest"
	"zkflow/internal/obs"
	"zkflow/internal/remote"
	"zkflow/internal/zkvm"
)

// E18: distributed prover farm speedup and failover recovery.
//
// The box this bench runs on has a fixed CPU budget, so running four
// real provers in one process measures scheduler contention, not farm
// dispatch. Instead the epoch is proved for real ONCE — giving the
// per-segment receipt bytes, the per-segment proving cost, and the
// byte-identity golden — and the worker fleet is then simulated:
// each worker holds its segment for the measured proving duration
// before returning the real receipt. What the experiment measures is
// everything the farm itself adds: planning, request fan-out, dispatch,
// result collection, reassembly, and verification. Byte-identity
// against the single-prover golden is asserted on every row, including
// the failover row where a worker is killed mid-epoch.

// farmSegCycles slices the E18 epoch into ~1M-cycle segments: at the
// measured ~800 guest cycles/record a 100k-record epoch yields dozens
// of segments, enough for a 4-worker fleet to balance.
const farmSegCycles = 1 << 20

// FarmRow is one E18 measurement (the BENCH_PR*.json farm schema).
type FarmRow struct {
	Workers            int     `json:"workers"`
	Failover           bool    `json:"failover,omitempty"`
	Records            int     `json:"records"`
	Segments           int     `json:"segments"`
	ProveMs            float64 `json:"prove_ms"`
	SpeedupX           float64 `json:"farm_speedup_x,omitempty"`
	IdealPct           float64 `json:"farm_ideal_pct,omitempty"`
	FailoverRecoveryMs float64 `json:"farm_failover_recovery_ms,omitempty"`
	ByteIdentical      bool    `json:"byte_identical"`

	// Dispatch-plane accounting (informational, not gated): how much
	// failover machinery the run actually exercised.
	Requeued    uint64 `json:"requeued"`
	Steals      uint64 `json:"steals"`
	WorkersDead uint64 `json:"workers_dead"`
	Duplicates  uint64 `json:"results_duplicate"`
}

// farmFixture is the calibrated single-prover baseline.
type farmFixture struct {
	prog     *zkvm.Program
	input    []uint32
	opts     zkvm.ProveOptions
	seed     [32]byte
	segBytes [][]byte        // real per-segment receipts, wire-encoded
	segDur   []time.Duration // real per-segment proving cost
	golden   []byte          // single-prover composite bytes
	realMs   float64
}

// calibrateFarm proves the epoch once for real, segment by segment.
func calibrateFarm(checks, records int) (*farmFixture, error) {
	in := genesisInput(1, records)
	fx := &farmFixture{
		prog:  guest.AggregationProgram(),
		input: in.Words(),
		opts:  zkvm.ProveOptions{Checks: checks, SegmentCycles: farmSegCycles, Parallelism: 1},
		seed:  [32]byte{0xe1, 0x80},
	}
	run, err := zkvm.NewSegmentRun(fx.prog, fx.input, fx.opts, fx.seed)
	if err != nil {
		return nil, err
	}
	defer run.Release()
	n := run.Segments()
	receipts := make([]*zkvm.SegmentReceipt, n)
	fx.segBytes = make([][]byte, n)
	fx.segDur = make([]time.Duration, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		sr, err := run.ProveSegment(i)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		fx.segDur[i] = time.Since(t0)
		fx.realMs += ms(fx.segDur[i])
		receipts[i] = sr
		if fx.segBytes[i], err = zkvm.MarshalSegmentReceipt(sr); err != nil {
			return nil, err
		}
	}
	comp, err := zkvm.AssembleComposite(receipts)
	if err != nil {
		return nil, err
	}
	fx.golden, err = comp.MarshalBinary()
	return fx, err
}

// simProve is the simulated worker: hold the segment for its measured
// real proving cost, then return the pre-proved receipt.
func (fx *farmFixture) simProve(ctx context.Context, job *remote.WorkerJob) ([]byte, error) {
	if !job.Segment || job.SegIndex >= len(fx.segBytes) {
		return nil, fmt.Errorf("unexpected job %d/%v", job.SegIndex, job.Segment)
	}
	select {
	case <-time.After(fx.segDur[job.SegIndex]):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return fx.segBytes[job.SegIndex], nil
}

// farmWorkerPool spawns n simulated workers and returns their cancel
// functions (index-aligned) plus a teardown. Like the real
// zkflow-worker command, each worker redials when its session drops
// (the in-process fleet shares one CPU with the coordinator, so a
// scheduler stall can cost it a heartbeat) — only its context ends it.
func farmWorkerPool(coord *remote.Coordinator, fx *farmFixture, n int) ([]context.CancelFunc, func()) {
	cancels := make([]context.CancelFunc, n)
	dones := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		cancels[i], dones[i] = cancel, done
		name := fmt.Sprintf("sim-%d", i)
		go func() {
			defer close(done)
			for {
				remote.RunWorker(ctx, coord.Addr(), remote.WorkerConfig{Name: name, Capacity: 1, Prove: fx.simProve})
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}
	return cancels, func() {
		for i := range cancels {
			cancels[i]()
			<-dones[i]
		}
	}
}

// runFarm measures one farm prove at the given worker count; when
// failover is set, one worker is killed once a quarter of the results
// are in, and the requeue-to-redispatch latency is measured.
func runFarm(fx *farmFixture, workers int, failover bool) (FarmRow, error) {
	reg := obs.NewRegistry()
	// 500 ms heartbeats: the whole fleet shares this process (and on CI,
	// one CPU), so the 3-beat staleness deadline must tolerate scheduler
	// and GC stalls that a cross-host deployment would never see.
	// Failover detection below is connection-close driven, not
	// staleness driven, so the recovery measurement doesn't care.
	coord := remote.NewCoordinator(remote.FarmConfig{
		HeartbeatEvery: 500 * time.Millisecond,
		Metrics:        reg,
	})
	if err := coord.Start("127.0.0.1:0"); err != nil {
		return FarmRow{}, err
	}
	defer coord.Close()
	cancels, teardown := farmWorkerPool(coord, fx, workers)
	defer teardown()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	if err := coord.WaitForWorkers(ctx, workers); err != nil {
		return FarmRow{}, err
	}

	row := FarmRow{Workers: workers, Failover: failover, Segments: len(fx.segBytes)}
	var recovery time.Duration
	killed := make(chan struct{})
	proveDone := make(chan struct{})
	if failover {
		go func() {
			defer close(killed)
			quarter := uint64(len(fx.segBytes) / 4)
			for reg.Counter("farm.results_ok").Value() < quarter {
				select {
				case <-ctx.Done():
					return
				case <-proveDone:
					return // epoch finished before the kill point: nothing to fail over
				case <-time.After(5 * time.Millisecond):
				}
			}
			t0 := time.Now()
			cancels[workers-1]() // the crash
			// Recovery: the dead worker's orphans are requeued at the
			// front of the queue, so once the requeue is observed, the
			// next `requeued` increments of farm.jobs_dispatched are
			// exactly the orphans landing on live workers. (Waiting for
			// the queue to drain instead would measure epoch completion:
			// with every segment enqueued up front, the queue stays
			// populated until the end.) If the victim happened to hold
			// nothing, the epoch just completes and recovery reads zero.
			for reg.Counter("farm.jobs_requeued").Value() == 0 {
				select {
				case <-ctx.Done():
					return
				case <-proveDone:
					return
				case <-time.After(time.Millisecond):
				}
			}
			requeued := reg.Counter("farm.jobs_requeued").Value()
			atRequeue := reg.Counter("farm.jobs_dispatched").Value()
			for reg.Counter("farm.jobs_dispatched").Value() < atRequeue+requeued {
				select {
				case <-ctx.Done():
					return
				case <-proveDone:
					return
				case <-time.After(time.Millisecond):
				}
			}
			recovery = time.Since(t0)
		}()
	}

	t0 := time.Now()
	receipt, err := coord.ProveSeeded(ctx, fx.prog, fx.input, fx.opts, fx.seed)
	close(proveDone)
	if err != nil {
		return FarmRow{}, err
	}
	row.ProveMs = ms(time.Since(t0))
	got, err := receipt.MarshalBinary()
	if err != nil {
		return FarmRow{}, err
	}
	row.ByteIdentical = string(got) == string(fx.golden)
	if failover {
		<-killed
		row.FailoverRecoveryMs = ms(recovery)
	}
	snap := reg.Snapshot()
	row.Requeued = snap.Counters["farm.jobs_requeued"]
	row.Steals = snap.Counters["farm.steals"]
	row.WorkersDead = snap.Counters["farm.workers_dead"]
	row.Duplicates = snap.Counters["farm.results_duplicate"]
	return row, nil
}

// expFarm is the E18 experiment: farm dispatch speedup at 1 and 4
// workers against the calibrated single-prover baseline, plus a
// failover row with a worker killed mid-epoch. Acceptance: >=0.7x
// ideal speedup at 4 workers, byte-identical receipts on every row.
func expFarm(checks, records int) []FarmRow {
	fmt.Println("=== E18: distributed prover farm (sharded dispatch + failover) ===")
	fmt.Printf("(calibrating: proving a %d-record epoch once for real; workers then replay measured per-segment costs)\n", records)
	fx, err := calibrateFarm(checks, records)
	if err != nil {
		log.Fatalf("E18 calibration: %v", err)
	}
	fmt.Printf("calibrated: %d segments, %.0f ms single-prover total\n\n", len(fx.segBytes), fx.realMs)
	fmt.Printf("%8s  %8s  %9s  %10s  %8s  %7s  %12s  %5s\n",
		"workers", "records", "segments", "prove ms", "speedup", "ideal%", "failover ms", "bytes")

	var rows []FarmRow
	var base float64
	for _, cfg := range []struct {
		workers  int
		failover bool
	}{{1, false}, {4, false}, {4, true}} {
		row, err := runFarm(fx, cfg.workers, cfg.failover)
		if err != nil {
			log.Fatalf("E18 workers=%d failover=%v: %v", cfg.workers, cfg.failover, err)
		}
		row.Records = records
		if cfg.workers == 1 && !cfg.failover {
			base = row.ProveMs
		}
		if base > 0 && !cfg.failover {
			row.SpeedupX = base / row.ProveMs
			row.IdealPct = 100 * row.SpeedupX / float64(cfg.workers)
		}
		rows = append(rows, row)
		bytesOK := "ok"
		if !row.ByteIdentical {
			bytesOK = "DIFF"
		}
		status := ""
		if !cfg.failover && cfg.workers > 1 && row.IdealPct < 70 {
			status = "  << below 0.7x-ideal target"
		}
		fmt.Printf("%8d  %8d  %9d  %10.0f  %7.2fx  %6.0f%%  %12.1f  %5s  (requeued=%d steals=%d dead=%d dup=%d)%s\n",
			row.Workers, row.Records, row.Segments, row.ProveMs,
			row.SpeedupX, row.IdealPct, row.FailoverRecoveryMs, bytesOK,
			row.Requeued, row.Steals, row.WorkersDead, row.Duplicates, status)
	}
	fmt.Println()
	return rows
}
