// Command zkflow-bench regenerates the paper's evaluation artifacts
// (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	-exp fig4         Figure 4: proof generation latency vs. #records
//	-exp table1       Table 1: proof/journal/receipt sizes
//	-exp tamper       §6 tamper experiment
//	-exp parallel     §7 proof parallelization (segment + worker-pool fan-out)
//	-exp pipeline     epoch pipelining (witness N+1 overlaps seal N)
//	-exp specialized  §7 specialized prover vs. zkVM hash throughput
//	-exp ingest       E16: sustained UDP/inject collector throughput (flows/sec)
//	-exp lightsync    E17: light-client proof sync vs full audit (bytes + ms)
//	-exp farm         E18: distributed prover farm speedup + failover recovery
//	-exp fold         E19: folded receipt bytes + verify ms vs segment count
//	-exp all          everything above
//
// Absolute numbers differ from the paper's Threadripper + RISC Zero
// testbed; the shapes (growth, who wins, flat verification) are the
// reproduction target.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zkflow/internal/api"
	"zkflow/internal/clog"
	"zkflow/internal/core"
	"zkflow/internal/lightsync"
	"zkflow/internal/fastagg"
	"zkflow/internal/gperm"
	"zkflow/internal/guest"
	"zkflow/internal/ingest"
	"zkflow/internal/ledger"
	"zkflow/internal/netflow"
	"zkflow/internal/query"
	"zkflow/internal/router"
	"zkflow/internal/stark"
	"zkflow/internal/store"
	"zkflow/internal/trafficgen"
	"zkflow/internal/vmtree"
	"zkflow/internal/zkvm"
)

// paperSizes are the record counts of Figure 4 / Table 1.
var paperSizes = []int{50, 100, 500, 1000, 2000, 3000}

// genesisInput builds a 4-router genesis aggregation input totalling
// records entries, mirroring the paper's testbed topology.
func genesisInput(seed int64, records int) *guest.AggInput {
	const routers = 4
	gens := trafficgen.PerRouter(trafficgen.Config{
		Seed: seed, NumFlows: records, Routers: routers, LossRate: 0.02,
	})
	in := &guest.AggInput{}
	per := records / routers
	for i, g := range gens {
		n := per
		if i == routers-1 {
			n = records - per*(routers-1)
		}
		recs := g.Batch(uint32(i), 0, n)
		in.Routers = append(in.Routers, guest.RouterBatch{
			ID:         uint32(i),
			Commitment: vmtree.FromBytes(ledger.CommitRecords(recs)),
			Records:    recs,
		})
	}
	return in
}

// aggregateOnce proves one aggregation round and returns the receipt
// and the resulting CLog entries. segCycles > 0 proves a continuation
// chain (composite receipt) instead of a single segment.
func aggregateOnce(in *guest.AggInput, checks, segCycles int) (zkvm.AnyReceipt, []clog.Entry, time.Duration, error) {
	t0 := time.Now()
	receipt, err := zkvm.ProveAny(guest.AggregationProgram(), in.Words(),
		zkvm.ProveOptions{Checks: checks, SegmentCycles: segCycles})
	if err != nil {
		return nil, nil, 0, err
	}
	genTime := time.Since(t0)
	var batches [][]netflow.Record
	for _, b := range in.Routers {
		batches = append(batches, b.Records)
	}
	entries := guest.ReferenceAggregate(in.PrevEntries, batches...)
	return receipt, entries, genTime, nil
}

const paperQuery = `SELECT SUM(hop_count) FROM clogs WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9";`

// SweepRow is one record-count point of the E1 sweep (times in ms).
// The field names are the BENCH_PR*.json schema zkflow-benchdiff
// compares across PRs — do not rename lightly.
type SweepRow struct {
	Records      int     `json:"records"`
	AggProofMs   float64 `json:"agg_proof_ms"`
	QueryProofMs float64 `json:"query_proof_ms"`
	AggVerifyMs  float64 `json:"agg_verify_ms"`
	QryVerifyMs  float64 `json:"query_verify_ms"`
	// AggSegments is the number of continuation segments in the
	// aggregation receipt (1 = single-segment proving).
	AggSegments int `json:"agg_segments"`
}

// ContRow is one point of the E15 continuation sweep: the same
// 2000-record aggregation proved with a given segment length and
// prover parallelism.
type ContRow struct {
	SegmentCycles int     `json:"segment_cycles"`
	Parallelism   int     `json:"parallelism"`
	Segments      int     `json:"segments"`
	AggProofMs    float64 `json:"agg_proof_ms"`
	AggVerifyMs   float64 `json:"agg_verify_ms"`
	ReceiptKB     float64 `json:"receipt_kb"`
}

// StageSplit is the per-stage wall-time breakdown of one aggregation
// proof (ms per zkvm stage label).
type StageSplit struct {
	Records int                `json:"records"`
	WallMs  float64            `json:"wall_ms"`
	Stages  map[string]float64 `json:"stages_ms"`
}

// IngestRow is one point of the E16 ingest sweep: sustained collector
// throughput at a shard count, measured from first datagram to final
// sealed-and-committed record. Transport "inject" exercises the full
// decode→shard→commit path in process; "udp" adds the socket (and any
// kernel-level datagram loss on a blast, which is outside the
// pipeline's accounting).
type IngestRow struct {
	Shards      int     `json:"shards"`
	Transport   string  `json:"transport"`
	Protocol    string  `json:"protocol"`
	Records     int     `json:"records"`
	FlowsPerSec float64 `json:"ingest_flows_per_sec"`
	DroppedPct  float64 `json:"dropped_pct"`
}

// LightSyncRow is one point of the E17 light-sync experiment: a light
// client pinned at the epoch-0 checkpoint syncs forward to the head,
// verifying the ledger delta, one sampled receipt, and an
// inclusion-proof spot check, against a full auditor downloading and
// verifying everything.
type LightSyncRow struct {
	Epochs          int     `json:"epochs"`
	Entries         int     `json:"entries"`
	Sampled         int     `json:"sampled"`
	LightBytes      uint64  `json:"light_bytes"`
	FullBytes       uint64  `json:"full_bytes"`
	LightBytesPct   float64 `json:"light_bytes_pct"`
	LightSyncMs     float64 `json:"light_sync_ms"`
	FullAuditMs     float64 `json:"full_audit_ms"`
	LightMsPerEpoch float64 `json:"light_ms_per_epoch"`
}

// BenchReport is the machine-readable output of -json: the E1 sweep
// plus the stage split and the E15-E17 sweeps, with enough
// environment to interpret them.
type BenchReport struct {
	CPUs          int            `json:"cpus"`
	Checks        int            `json:"checks"`
	SegmentCycles int            `json:"segment_cycles,omitempty"`
	Sweep         []SweepRow     `json:"sweep"`
	Stages        StageSplit     `json:"stages"`
	Continuations []ContRow      `json:"continuations,omitempty"`
	Ingest        []IngestRow    `json:"ingest,omitempty"`
	LightSync     []LightSyncRow `json:"lightsync,omitempty"`
	Farm          []FarmRow      `json:"farm,omitempty"`
	Fold          []FoldRow      `json:"fold,omitempty"`
	Kernel        []KernelRow    `json:"kernel,omitempty"`
}

// numSegments reports the continuation segment count of a receipt (1
// for single-segment receipts).
func numSegments(r zkvm.AnyReceipt) int {
	if c, ok := r.(*zkvm.CompositeReceipt); ok {
		return c.NumSegments()
	}
	return 1
}

// runSweep measures the E1/Figure-4 series and returns one row per
// paper record count.
func runSweep(checks, segCycles int) []SweepRow {
	rows := make([]SweepRow, 0, len(paperSizes))
	for _, size := range paperSizes {
		in := genesisInput(int64(size), size)
		receipt, entries, aggGen, err := aggregateOnce(in, checks, segCycles)
		if err != nil {
			log.Fatalf("size %d: %v", size, err)
		}
		t0 := time.Now()
		if err := zkvm.VerifyAny(guest.AggregationProgram(), receipt, zkvm.VerifyOptions{}); err != nil {
			log.Fatalf("size %d: agg verify: %v", size, err)
		}
		aggVer := time.Since(t0)

		q := query.MustParse(paperQuery)
		prog := guest.QueryProgram(q)
		t0 = time.Now()
		qr, err := zkvm.Prove(prog, guest.QueryInput(entries), zkvm.ProveOptions{Checks: checks})
		if err != nil {
			log.Fatalf("size %d: query prove: %v", size, err)
		}
		qryGen := time.Since(t0)
		t0 = time.Now()
		if err := zkvm.Verify(prog, qr, zkvm.VerifyOptions{}); err != nil {
			log.Fatalf("size %d: query verify: %v", size, err)
		}
		rows = append(rows, SweepRow{
			Records:      size,
			AggProofMs:   ms(aggGen),
			QueryProofMs: ms(qryGen),
			AggVerifyMs:  ms(aggVer),
			QryVerifyMs:  ms(time.Since(t0)),
			AggSegments:  numSegments(receipt),
		})
	}
	return rows
}

func expFig4(checks, segCycles int, csvPath string) []SweepRow {
	fmt.Println("=== E1 / Figure 4: proof generation latency vs. #records ===")
	fmt.Println("(paper @3000: aggregation 87 min, query 16 min, verification flat ~3 ms on RISC Zero)")
	fmt.Printf("%8s  %14s  %14s  %12s  %12s  %9s\n", "records", "agg proof", "query proof", "agg verify", "qry verify", "segments")
	rows := runSweep(checks, segCycles)
	for _, r := range rows {
		fmt.Printf("%8d  %12.0f ms  %12.0f ms  %9.1f ms  %9.1f ms  %9d\n",
			r.Records, r.AggProofMs, r.QueryProofMs, r.AggVerifyMs, r.QryVerifyMs, r.AggSegments)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			log.Fatalf("csv: %v", err)
		}
		defer f.Close()
		fmt.Fprintln(f, "records,agg_proof_ms,query_proof_ms,agg_verify_ms,query_verify_ms")
		for _, r := range rows {
			fmt.Fprintf(f, "%d,%.2f,%.2f,%.3f,%.3f\n",
				r.Records, r.AggProofMs, r.QueryProofMs, r.AggVerifyMs, r.QryVerifyMs)
		}
	}
	fmt.Println()
	return rows
}

func expTable1(checks int) {
	fmt.Println("=== E2 / Table 1: aggregation proof, journal, receipt sizes ===")
	fmt.Println("(paper: proof constant 256 B — Groth16-wrapped; ours is a polylog transparent seal)")
	fmt.Printf("%8s  %12s  %12s  %12s   | paper: %7s %11s %11s\n",
		"records", "seal", "journal", "receipt", "proof", "journal", "receipt")
	paper := map[int][3]string{
		50: {"256 B", "3.6 KB", "7.6 KB"}, 100: {"256 B", "5.6 KB", "12 KB"},
		500: {"256 B", "29.3 KB", "58 KB"}, 1000: {"256 B", "58.9 KB", "116 KB"},
		2000: {"256 B", "118.1 KB", "231 KB"}, 3000: {"256 B", "176.7 KB", "346 KB"},
	}
	for _, size := range paperSizes {
		in := genesisInput(int64(size), size)
		receipt, _, _, err := aggregateOnce(in, checks, 0)
		if err != nil {
			log.Fatalf("size %d: %v", size, err)
		}
		pp := paper[size]
		fmt.Printf("%8d  %9.1f KB  %9.1f KB  %9.1f KB   | %13s %11s %11s\n",
			size, kb(receipt.SealSize()), kb(len(receipt.JournalBytes())), kb(receipt.Size()),
			pp[0], pp[1], pp[2])
	}
	fmt.Println()
}

func expTamper(checks int) {
	fmt.Println("=== E3 / §6 tamper experiment ===")
	in := genesisInput(77, 200)
	if _, _, _, err := aggregateOnce(in, checks, 0); err != nil {
		log.Fatalf("control run failed: %v", err)
	}
	fmt.Println("control (untampered): receipt produced")
	// Flip one counter in one record after the commitment.
	in.Routers[2].Records[5].Bytes ^= 1
	t0 := time.Now()
	_, _, _, err := aggregateOnce(in, checks, 0)
	if err == nil {
		log.Fatal("TAMPER MISSED: receipt produced over modified data")
	}
	fmt.Printf("tampered RLog: proof generation FAILED in %.0f ms (%v)\n\n", ms(time.Since(t0)), err)
}

func expParallel(checks int) {
	fmt.Println("=== E5 / §7 proof parallelization: segments vs. proving time ===")
	in := genesisInput(5, 1000)
	words := in.Words()
	// Warm-up run so the first measured row does not absorb one-time
	// costs (page faults, program assembly).
	if _, err := zkvm.Prove(guest.AggregationProgram(), words, zkvm.ProveOptions{Checks: checks}); err != nil {
		log.Fatal(err)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("note: single-CPU host — segment fan-out cannot show wall-clock speedup here")
	}
	fmt.Printf("%10s  %14s  %8s\n", "segments", "agg proof", "speedup")
	var base float64
	for _, segs := range []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)} {
		t0 := time.Now()
		_, err := zkvm.Prove(guest.AggregationProgram(), words, zkvm.ProveOptions{Checks: checks, Segments: segs})
		if err != nil {
			log.Fatal(err)
		}
		d := ms(time.Since(t0))
		if base == 0 {
			base = d
		}
		fmt.Printf("%10d  %12.0f ms  %7.2fx\n", segs, d, base/d)
	}
	fmt.Println()

	// Worker-pool width: the same single-segment proof with the
	// prover's internal table/tree commitment work fanned out.
	fmt.Printf("%11s  %14s  %8s  (single segment)\n", "parallelism", "agg proof", "speedup")
	base = 0
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		t0 := time.Now()
		_, err := zkvm.Prove(guest.AggregationProgram(), words, zkvm.ProveOptions{Checks: checks, Parallelism: w})
		if err != nil {
			log.Fatal(err)
		}
		d := ms(time.Since(t0))
		if base == 0 {
			base = d
		}
		fmt.Printf("%11d  %12.0f ms  %7.2fx\n", w, d, base/d)
	}
	fmt.Println()
}

// expContinuations is the E15 sweep: the same 2000-record aggregation
// proved as a continuation chain at several segment lengths and
// worker-pool widths. Shorter segments mean more, smaller slices that
// seal concurrently — the wall-clock win scales with cores, while the
// boundary-image imports bound the overhead on a single core.
func expContinuations(checks int) []ContRow {
	fmt.Println("=== E15: continuations — segment count x parallelism (2000 records) ===")
	in := genesisInput(int64(2000), 2000)
	words := in.Words()
	prog := guest.AggregationProgram()
	// Warm-up: populate the trace-size memo and slab pools so every
	// measured row sees the same steady-state allocator.
	if _, err := zkvm.Prove(prog, words, zkvm.ProveOptions{Checks: checks}); err != nil {
		log.Fatal(err)
	}
	cores := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		cores = append(cores, n)
	} else {
		fmt.Println("note: single-CPU host — segment fan-out cannot show wall-clock speedup here")
	}
	var rows []ContRow
	var base float64
	fmt.Printf("%14s  %12s  %9s  %14s  %12s  %8s\n",
		"segment-cycles", "parallelism", "segments", "agg proof", "agg verify", "speedup")
	for _, segCycles := range []int{0, 1 << 18, 1 << 17, 1 << 16} {
		for _, par := range cores {
			t0 := time.Now()
			receipt, err := zkvm.ProveAny(prog, words,
				zkvm.ProveOptions{Checks: checks, SegmentCycles: segCycles, Parallelism: par})
			if err != nil {
				log.Fatal(err)
			}
			gen := ms(time.Since(t0))
			t0 = time.Now()
			if err := zkvm.VerifyAny(prog, receipt, zkvm.VerifyOptions{}); err != nil {
				log.Fatalf("segment-cycles %d: verify: %v", segCycles, err)
			}
			ver := ms(time.Since(t0))
			if base == 0 {
				base = gen
			}
			row := ContRow{
				SegmentCycles: segCycles, Parallelism: par,
				Segments: numSegments(receipt), AggProofMs: gen,
				AggVerifyMs: ver, ReceiptKB: kb(receipt.Size()),
			}
			rows = append(rows, row)
			fmt.Printf("%14d  %12d  %9d  %12.0f ms  %9.1f ms  %7.2fx\n",
				segCycles, par, row.Segments, gen, ver, base/gen)
		}
	}
	fmt.Println()
	return rows
}

// expPipeline measures the epoch pipeline: the same multi-epoch chain
// aggregated serially vs. through a Scheduler that overlaps witness
// generation with sealing.
func expPipeline(checks int) {
	fmt.Println("=== E7: epoch pipelining (witness N+1 overlaps seal N) ===")
	const epochs, records = 6, 400
	run := func(depth int) (time.Duration, error) {
		st := store.Open(0)
		lg := ledger.New()
		sim := router.NewSim(trafficgen.Config{
			Seed: 21, NumFlows: 256, Routers: 4, LossRate: 0.02,
		}, st, lg)
		if err := sim.RunEpochs(context.Background(), 0, epochs, records/4); err != nil {
			return 0, err
		}
		p := core.NewProver(st, lg, core.Options{Checks: checks, PipelineDepth: depth})
		list := make([]uint64, epochs)
		for i := range list {
			list[i] = uint64(i)
		}
		t0 := time.Now()
		if depth == 0 {
			for _, e := range list {
				if _, err := p.AggregateEpoch(e); err != nil {
					return 0, err
				}
			}
		} else if _, err := p.AggregateEpochs(list); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}
	if _, err := run(0); err != nil { // warm-up
		log.Fatal(err)
	}
	fmt.Printf("%8s  %16s  %8s   (%d epochs x %d records)\n", "depth", "chain time", "speedup", epochs, records)
	var base float64
	for _, depth := range []int{0, 1, 2, 3} {
		d, err := run(depth)
		if err != nil {
			log.Fatalf("depth %d: %v", depth, err)
		}
		t := ms(d)
		if base == 0 {
			base = t
		}
		label := "serial"
		if depth > 0 {
			label = fmt.Sprintf("%d", depth)
		}
		fmt.Printf("%8s  %14.0f ms  %7.2fx\n", label, t, base/t)
	}
	fmt.Println()
}

func expSpecialized(checks int) {
	fmt.Println("=== E6 / §7 specialized proof system vs. zkVM hashing ===")
	fmt.Println("(paper: ~600k hashes/s specialized vs. 35k hashes in 87 min on the zkVM)")

	var block [16]uint32
	for i := range block {
		block[i] = uint32(i + 1)
	}

	// 1. zkVM, software SHA-256 (no precompile).
	nSoft := uint32(16)
	t0 := time.Now()
	_, err := zkvm.Prove(guest.SoftSHA256ChainProgram(), guest.SoftSHA256Input(nSoft, block), zkvm.ProveOptions{Checks: checks})
	if err != nil {
		log.Fatal(err)
	}
	softRate := float64(nSoft) / time.Since(t0).Seconds()

	// 2. zkVM with the SHA precompile (RISC Zero's accelerator model).
	nPre := uint32(4096)
	t0 = time.Now()
	_, err = zkvm.Prove(guest.PrecompileHashChainProgram(), guest.SoftSHA256Input(nPre, block), zkvm.ProveOptions{Checks: checks})
	if err != nil {
		log.Fatal(err)
	}
	preRate := float64(nPre) / time.Since(t0).Seconds()

	// 3. Specialized STARK over the algebraic permutation chain.
	var seed gperm.State
	seed[0] = 9
	n := 8192 // 1023 permutations
	t0 = time.Now()
	proof, err := fastagg.Prove(seed, n, stark.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	starkRate := float64(proof.Stmt.Hashes()) / time.Since(t0).Seconds()
	if err := fastagg.Verify(proof, stark.DefaultParams); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-44s %14s\n", "prover", "hashes/sec")
	fmt.Printf("%-44s %14.1f\n", "zkVM, software SHA-256 guest (~5.2k cycles/hash)", softRate)
	fmt.Printf("%-44s %14.1f\n", "zkVM, SHA-256 precompile", preRate)
	fmt.Printf("%-44s %14.1f\n", "specialized STARK (gperm chain)", starkRate)
	fmt.Printf("specialized vs. software-zkVM speedup: %.0fx (proof %d B, verified)\n",
		starkRate/softRate, proof.Size())
	// Normalised circuit-size comparison: a production zkVM pays a
	// full constraint-system row per cycle (our committed-trace rows
	// are far cheaper), so the architecturally comparable metric is
	// rows-of-proof-work per hash.
	const cyclesPerSoftHash = 5181 // measured by TestSoftSHA256CycleCount
	rowsPerStarkHash := float64(gperm.Rounds)
	fmt.Printf("circuit rows per hash: zkVM software %d vs. specialized %d -> %.0fx fewer constrained rows\n\n",
		cyclesPerSoftHash, gperm.Rounds, cyclesPerSoftHash/rowsPerStarkHash)
}

// stageCollector gathers one proof's per-stage wall times (it
// implements zkvm.StageObserver; the mutex is for the worker-pool
// case where stages could in principle report concurrently).
type stageCollector struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

func (c *stageCollector) ObserveStage(stage string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.d == nil {
		c.d = make(map[string]time.Duration)
	}
	c.d[stage] += d
}

// expStages prints where aggregation proving time actually goes: the
// per-stage breakdown of one 1000-record proof (ProveOptions.Observer
// is the same hook zkflowd feeds into /api/v1/metrics). Stage times
// sum to slightly less than the wall clock (transcript work between
// stages is unattributed).
// runStages measures one 1000-record aggregation proof's per-stage
// split after a warm-up run.
func runStages(checks int) StageSplit {
	const records = 1000
	in := genesisInput(3, records)
	words := in.Words()
	// Warm-up, so the measured run does not absorb one-time costs.
	if _, err := zkvm.Prove(guest.AggregationProgram(), words, zkvm.ProveOptions{Checks: checks}); err != nil {
		log.Fatal(err)
	}
	col := &stageCollector{}
	t0 := time.Now()
	if _, err := zkvm.Prove(guest.AggregationProgram(), words, zkvm.ProveOptions{Checks: checks, Observer: col}); err != nil {
		log.Fatal(err)
	}
	split := StageSplit{Records: records, WallMs: ms(time.Since(t0)), Stages: map[string]float64{}}
	for _, stage := range zkvm.Stages {
		split.Stages[stage] = ms(col.d[stage])
	}
	return split
}

func expStages(checks int) StageSplit {
	fmt.Println("=== E13: per-stage prover breakdown (1000 records) ===")
	split := runStages(checks)
	fmt.Printf("%-16s  %12s  %7s\n", "stage", "time", "share")
	var attributed float64
	for _, stage := range zkvm.Stages {
		d := split.Stages[stage]
		attributed += d
		fmt.Printf("%-16s  %10.1f ms  %6.1f%%\n", stage, d, 100*d/split.WallMs)
	}
	fmt.Printf("%-16s  %10.1f ms  %6.1f%% (transcript + bookkeeping)\n",
		"unattributed", split.WallMs-attributed, 100*(split.WallMs-attributed)/split.WallMs)
	fmt.Printf("%-16s  %10.1f ms\n\n", "wall", split.WallMs)
	kernelStageSplit()
	return split
}

func expProfile() {
	fmt.Println("=== guest cycle profile (paper §6: Merkle work dominates in-VM) ===")
	in := genesisInput(3, 1000)
	ex, err := zkvm.Execute(guest.AggregationProgram(), in.Words(), zkvm.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	prof := zkvm.Profile(ex, guest.AggregationRegions())
	fmt.Print(zkvm.FormatProfile(prof))
	var hashMem, totalMem int
	for _, e := range prof {
		totalMem += e.MemOps
		if e.Name == "leafhashes" || e.Name == "reduce" {
			hashMem += e.MemOps
		}
	}
	fmt.Printf("\nMerkle tree work (leafhashes+reduce): %.0f%% of all memory traffic\n",
		100*float64(hashMem)/float64(totalMem))
	// Re-cost the same run for a zkVM WITHOUT a hash precompile (the
	// paper's guests hash in software): each 16-word block costs
	// ~5181 cycles (measured by TestSoftSHA256CycleCount).
	const softCyclesPerBlock = 5181
	softHashCycles := float64(hashMem) / 16 * softCyclesPerBlock
	otherCycles := float64(len(ex.Rows))
	fmt.Printf("re-costed without the SHA precompile: Merkle hashing would be %.0f%% of all cycles\n",
		100*softHashCycles/(softHashCycles+otherCycles))
	fmt.Printf("-> reproduces the paper's profile (\"majority of overhead stems from Merkle tree\n")
	fmt.Printf("   updates within the zkVM\"); a hash accelerator shifts the bottleneck to data movement\n\n")
}

// ingestTargetPerMin is the E16 sustained-ingest goal: one million
// committed records per minute through the collector.
const ingestTargetPerMin = 1_000_000

// expIngest is the E16 sweep: sustained collector throughput, shard
// counts {1,2,4,GOMAXPROCS} over the in-process inject path plus one
// UDP row through a real socket. Epochs seal every 50 ms underneath
// the load, so the number includes commitment work, not just decode.
func expIngest() []IngestRow {
	fmt.Println("=== E16: ingest throughput (decoded, sharded, committed flows/sec) ===")
	fmt.Printf("(target: sustained >= %d records/min = %.1fk flows/sec)\n", ingestTargetPerMin, ingestTargetPerMin/60.0/1000)

	const routers = 8
	const perPacket = 50
	const totalRecords = 400_000

	// Pre-encode the replay set once; injection then measures the
	// collector, not the generator.
	var dgrams [][]byte
	for r, g := range trafficgen.PerRouter(trafficgen.Config{Seed: 42, NumFlows: 4096, Routers: routers}) {
		for c := 0; c < 4; c++ {
			recs := g.Batch(uint32(r), uint64(c), perPacket)
			dgrams = append(dgrams, netflow.EncodeV9(&netflow.ExportPacket{SourceID: uint32(r), Records: recs}))
		}
	}

	finish := func(p *ingest.Pipeline, shards int, transport string, elapsed float64) IngestRow {
		s := p.Stats()
		row := IngestRow{
			Shards:      shards,
			Transport:   transport,
			Protocol:    "v9",
			Records:     int(s.Committed),
			FlowsPerSec: float64(s.Committed) / elapsed,
		}
		if s.Received > 0 {
			row.DroppedPct = 100 * float64(s.Dropped()) / float64(s.Received)
		}
		if u := s.Unaccounted(); u != 0 {
			log.Fatalf("ingest bench: %d records unaccounted (%+v)", u, s)
		}
		return row
	}

	runInject := func(shards int) IngestRow {
		p, err := ingest.New(store.Open(0), ledger.New(), ingest.Config{
			Shards: shards, QueueDepth: 4096, EpochInterval: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Start(); err != nil {
			log.Fatal(err)
		}
		injectors := shards
		if n := runtime.GOMAXPROCS(0); injectors > n {
			injectors = n
		}
		var budget atomic.Int64
		budget.Store(totalRecords)
		t0 := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < injectors; i++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				for j := start; budget.Add(-perPacket) >= 0; j++ {
					p.Inject(dgrams[j%len(dgrams)])
				}
			}(i)
		}
		wg.Wait()
		if err := p.Close(); err != nil {
			log.Fatal(err)
		}
		return finish(p, shards, "inject", time.Since(t0).Seconds())
	}

	runUDP := func(shards int) IngestRow {
		p, err := ingest.New(store.Open(0), ledger.New(), ingest.Config{
			Addr: "127.0.0.1:0", Shards: shards, Readers: 4,
			QueueDepth: 4096, EpochInterval: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Start(); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if _, err := trafficgen.Replay(p.Addr().String(),
			trafficgen.Config{Seed: 7, NumFlows: 4096, Routers: routers},
			trafficgen.ReplayOptions{
				Epochs: 4, RecordsPerRouter: 2000, RecordsPerPacket: perPacket,
				// Pace the sender: an unshaped blast overruns the kernel
				// socket buffer before the readers are ever scheduled, so
				// the row would measure kernel drop, not the collector.
				Gap: 200 * time.Microsecond,
			}); err != nil {
			log.Fatal(err)
		}
		// Quiesce: a blast can outrun the kernel socket buffer; wait
		// until the datagram counter stops moving before sealing.
		last := p.Stats().Datagrams
		for {
			time.Sleep(200 * time.Millisecond)
			cur := p.Stats().Datagrams
			if cur == last {
				break
			}
			last = cur
		}
		elapsed := time.Since(t0).Seconds()
		if err := p.Close(); err != nil {
			log.Fatal(err)
		}
		return finish(p, shards, "udp", elapsed)
	}

	shardSet := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		shardSet = append(shardSet, n)
	}
	var rows []IngestRow
	fmt.Printf("%9s  %9s  %10s  %14s  %9s\n", "transport", "shards", "records", "flows/sec", "dropped")
	for _, s := range shardSet {
		rows = append(rows, runInject(s))
	}
	rows = append(rows, runUDP(4))
	for _, r := range rows {
		status := ""
		if r.Transport == "inject" && r.FlowsPerSec*60 < ingestTargetPerMin {
			status = "  << below 1M/min target"
		}
		fmt.Printf("%9s  %9d  %10d  %12.0f/s  %7.2f%%%s\n",
			r.Transport, r.Shards, r.Records, r.FlowsPerSec, r.DroppedPct, status)
	}
	fmt.Println()
	return rows
}

// runLightSync stands up an in-process operator with the given number
// of aggregated, checkpointed epochs, then measures a light sync from
// the epoch-0 pin against a full audit of the same server.
func runLightSync(checks, epochs int) LightSyncRow {
	const recordsPerRouter = 16
	ctx := context.Background()
	st := store.Open(0)
	lg := ledger.New()
	sim := router.NewSim(trafficgen.Config{Seed: 17, NumFlows: 256, Routers: 2}, st, lg)
	prover := core.NewProver(st, lg, core.Options{Checks: checks})
	srv := api.NewServer(prover, lg)
	for e := 0; e < epochs; e++ {
		if _, err := sim.RunEpoch(ctx, uint64(e), recordsPerRouter); err != nil {
			log.Fatalf("lightsync: epoch %d: %v", e, err)
		}
		res, err := prover.AggregateEpoch(uint64(e))
		if err != nil {
			log.Fatalf("lightsync: epoch %d: %v", e, err)
		}
		if err := srv.AddAggregation(uint64(e), res.Receipt); err != nil {
			log.Fatalf("lightsync: epoch %d: %v", e, err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Light client: pinned at the epoch-0 checkpoint, one sampled
	// receipt, inclusion-proof spot check.
	cp0, err := lg.CheckpointByEpoch(0)
	if err != nil {
		log.Fatalf("lightsync: %v", err)
	}
	state, err := lightsync.Pin(ts.URL, cp0)
	if err != nil {
		log.Fatalf("lightsync: %v", err)
	}
	lightClient := api.New(ts.URL, api.WithHTTPClient(ts.Client()), api.WithCache())
	t0 := time.Now()
	rep, err := lightsync.Sync(ctx, lightClient, state, lightsync.Options{Samples: 1, Seed: 17})
	if err != nil {
		log.Fatalf("lightsync: sync: %v", err)
	}
	lightMs := ms(time.Since(t0))

	// Full audit baseline: whole ledger, every receipt, full chain
	// verification — what zkflow-verify does.
	fullClient := api.New(ts.URL, api.WithHTTPClient(ts.Client()))
	t0 = time.Now()
	flg, err := fullClient.Ledger(ctx)
	if err != nil {
		log.Fatalf("lightsync: full audit: %v", err)
	}
	verifier := core.NewVerifier(flg)
	for round := 0; round < epochs; round++ {
		receipt, err := fullClient.AggregationReceipt(ctx, round)
		if err != nil {
			log.Fatalf("lightsync: full audit round %d: %v", round, err)
		}
		if _, err := verifier.VerifyAggregation(receipt); err != nil {
			log.Fatalf("lightsync: full audit round %d: %v", round, err)
		}
	}
	fullMs := ms(time.Since(t0))

	row := LightSyncRow{
		Epochs:      epochs,
		Entries:     rep.NewEntries,
		Sampled:     len(rep.SampledRounds),
		LightBytes:  rep.Bytes,
		FullBytes:   fullClient.BytesRead(),
		LightSyncMs: lightMs,
		FullAuditMs: fullMs,
	}
	if row.FullBytes > 0 {
		row.LightBytesPct = 100 * float64(row.LightBytes) / float64(row.FullBytes)
	}
	if n := len(rep.NewEpochs); n > 0 {
		row.LightMsPerEpoch = lightMs / float64(n)
	}
	return row
}

// expLightSync is the E17 experiment: verified sync cost for a light
// client versus a full auditor, as served epochs grow. The acceptance
// target is a light sync fetching <10% of the full-audit bytes.
func expLightSync(checks int) []LightSyncRow {
	fmt.Println("=== E17: light-client proof sync vs full audit ===")
	fmt.Println("(light: checkpoint delta + 1 sampled receipt + proof spot check; target <10% of full-fetch bytes)")
	var rows []LightSyncRow
	fmt.Printf("%7s  %8s  %12s  %12s  %7s  %10s  %10s  %12s\n",
		"epochs", "entries", "light bytes", "full bytes", "pct", "light ms", "full ms", "ms/epoch")
	// One sampled receipt costs ~1/N of the receipt corpus, so the
	// <10% bytes target needs enough epochs to amortize the sample.
	for _, epochs := range []int{16, 24} {
		r := runLightSync(checks, epochs)
		rows = append(rows, r)
		status := ""
		if r.LightBytesPct >= 10 {
			status = "  << above 10% target"
		}
		fmt.Printf("%7d  %8d  %12d  %12d  %6.2f%%  %10.1f  %10.1f  %12.2f%s\n",
			r.Epochs, r.Entries, r.LightBytes, r.FullBytes, r.LightBytesPct,
			r.LightSyncMs, r.FullAuditMs, r.LightMsPerEpoch, status)
	}
	fmt.Println()
	return rows
}

func ms(d time.Duration) float64 { return d.Seconds() * 1000 }
func kb(n int) float64           { return float64(n) / 1024 }

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4|table1|tamper|parallel|pipeline|specialized|profile|stages|continuations|ingest|lightsync|farm|fold|kernel|all")
		checks   = flag.Int("checks", zkvm.DefaultChecks, "zkVM sampled checks per proof")
		segCyc   = flag.Int("segment-cycles", 0, "prove sweep aggregations as continuation chains sliced every N cycles (0 = single-segment)")
		csv      = flag.String("csv", "", "write the Figure 4 series as CSV to this path")
		stages   = flag.Bool("stages", false, "shorthand for -exp stages: print the per-stage prover breakdown")
		farmRecs = flag.Int("farm-records", 100000, "E18 farm epoch size in records (the calibration prove is real; scale down for quick runs)")
		jsonPath = flag.String("json", "", "run the E1 sweep + stage split + E15 continuation sweep and write them as JSON to this path (see BENCH_PR5.json; compare runs with zkflow-benchdiff)")
	)
	flag.Parse()
	log.SetFlags(0)

	fmt.Printf("zkflow-bench: %d CPUs, checks=%d", runtime.GOMAXPROCS(0), *checks)
	if *segCyc > 0 {
		fmt.Printf(", segment-cycles=%d", *segCyc)
	}
	fmt.Print("\n\n")
	if *jsonPath != "" {
		report := BenchReport{CPUs: runtime.GOMAXPROCS(0), Checks: *checks, SegmentCycles: *segCyc}
		report.Sweep = expFig4(*checks, *segCyc, *csv)
		report.Stages = expStages(*checks)
		report.Continuations = expContinuations(*checks)
		report.Ingest = expIngest()
		report.LightSync = expLightSync(*checks)
		report.Farm = expFarm(*checks, *farmRecs)
		report.Fold = expFold(*checks)
		report.Kernel = expKernel()
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("json: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			log.Fatalf("json: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}
	if *stages {
		*exp = "stages"
	}
	switch *exp {
	case "fig4":
		expFig4(*checks, *segCyc, *csv)
	case "table1":
		expTable1(*checks)
	case "tamper":
		expTamper(*checks)
	case "parallel":
		expParallel(*checks)
	case "pipeline":
		expPipeline(*checks)
	case "specialized":
		expSpecialized(*checks)
	case "profile":
		expProfile()
	case "stages":
		expStages(*checks)
	case "continuations":
		expContinuations(*checks)
	case "ingest":
		expIngest()
	case "lightsync":
		expLightSync(*checks)
	case "farm":
		expFarm(*checks, *farmRecs)
	case "fold":
		expFold(*checks)
	case "kernel":
		expKernel()
	case "all":
		expFig4(*checks, *segCyc, *csv)
		expTable1(*checks)
		expTamper(*checks)
		expParallel(*checks)
		expPipeline(*checks)
		expSpecialized(*checks)
		expProfile()
		expStages(*checks)
		expContinuations(*checks)
		expIngest()
		expLightSync(*checks)
		expFarm(*checks, *farmRecs)
		expFold(*checks)
		expKernel()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
