package main

import (
	"fmt"
	"log"
	"time"

	"zkflow/internal/fastagg"
	"zkflow/internal/field"
	"zkflow/internal/fold"
	"zkflow/internal/gperm"
	"zkflow/internal/poly"
	"zkflow/internal/stark"
)

// KernelRow is one E20 measurement (the BENCH_PR*.json kernel
// schema): either a raw transform throughput point (op "ntt",
// ntt_melems_per_sec set) or a specialized chain proof (op
// "agg_chain" / "fold_chain", agg_proof_ms / agg_verify_ms set).
// Rows are keyed by op/size/parallelism in zkflow-benchdiff, and the
// gates are direction-aware: throughput regressing DOWN or latency
// regressing UP fails the diff.
type KernelRow struct {
	Op              string  `json:"op"`
	Size            int     `json:"size"`
	Parallelism     int     `json:"parallelism"`
	AggProofMs      float64 `json:"agg_proof_ms,omitempty"`
	AggVerifyMs     float64 `json:"agg_verify_ms,omitempty"`
	NTTMElemsPerSec float64 `json:"ntt_melems_per_sec,omitempty"`
}

// nttThroughput measures forward-transform throughput at size 2^logN
// with warm twiddle tables and a pooled buffer — the steady-state
// cost a proving process pays, not the cold first-call cost.
func nttThroughput(logN int) float64 {
	n := 1 << logN
	buf := poly.GetBuf(n)
	defer poly.PutBuf(buf)
	for i := range buf {
		buf[i] = field.New(uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	poly.NTT(buf) // warm the twiddle table for this size
	iters := 1
	for iters*n < 1<<22 {
		iters *= 2
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		poly.NTT(buf)
	}
	return float64(iters) * float64(n) / time.Since(t0).Seconds() / 1e6
}

// expKernel is the E20 experiment: the STARK math kernel in
// isolation, without any zkVM cost on top. Three NTT throughput
// points, then the two chain shapes the system actually proves — the
// specialized aggregation chain at n=8192 (the ~1000-record
// sequential-work commitment E6 uses) and the fold's binding chain at
// n=512 (= fold.ChainRows) — proved at Parallelism 1 so the gated
// number is single-core kernel speed, comparable across PRs
// regardless of the bench host's core count.
func expKernel() []KernelRow {
	fmt.Println("=== E20: STARK math kernel — NTT throughput + specialized chain latency ===")
	var rows []KernelRow
	fmt.Printf("%-12s %8s %12s %12s %12s %14s\n",
		"op", "size", "parallelism", "prove", "verify", "NTT Melem/s")
	for _, logN := range []int{12, 14, 16} {
		r := KernelRow{Op: "ntt", Size: 1 << logN, Parallelism: 1, NTTMElemsPerSec: nttThroughput(logN)}
		rows = append(rows, r)
		fmt.Printf("%-12s %8d %12d %12s %12s %14.2f\n", r.Op, r.Size, r.Parallelism, "-", "-", r.NTTMElemsPerSec)
	}

	var seed gperm.State
	seed[0] = 9
	for _, cfg := range []struct {
		op string
		n  int
	}{
		{"agg_chain", 8192},
		{"fold_chain", fold.ChainRows},
	} {
		params := stark.DefaultParams
		params.Parallelism = 1
		// Warm twiddles, ladders, and the scratch pools so the
		// measured run is the steady-state prover.
		if _, err := fastagg.Prove(seed, cfg.n, params); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		proof, err := fastagg.Prove(seed, cfg.n, params)
		if err != nil {
			log.Fatal(err)
		}
		proveMs := ms(time.Since(t0))
		t0 = time.Now()
		if err := fastagg.Verify(proof, params); err != nil {
			log.Fatal(err)
		}
		verifyMs := ms(time.Since(t0))
		r := KernelRow{Op: cfg.op, Size: cfg.n, Parallelism: 1, AggProofMs: proveMs, AggVerifyMs: verifyMs}
		rows = append(rows, r)
		fmt.Printf("%-12s %8d %12d %9.1f ms %9.1f ms %14s\n",
			r.Op, r.Size, r.Parallelism, proveMs, verifyMs, "-")
	}
	fmt.Println()
	return rows
}

// kernelStageSplit prints where the specialized chain prover's time
// goes — the stark substages (lde, commit, composition, fri) via the
// same observer hook zkflowd's /api/v1/metrics consumes through
// fold.Options.Observer.
func kernelStageSplit() {
	fmt.Println("--- specialized chain (fastagg n=8192) STARK substages ---")
	var seed gperm.State
	seed[0] = 9
	params := stark.DefaultParams
	params.Parallelism = 1
	if _, err := fastagg.Prove(seed, 8192, params); err != nil { // warm-up
		log.Fatal(err)
	}
	col := &stageCollector{}
	params.Observer = col
	t0 := time.Now()
	if _, err := fastagg.Prove(seed, 8192, params); err != nil {
		log.Fatal(err)
	}
	wall := ms(time.Since(t0))
	var attributed float64
	for _, s := range stark.Stages {
		d := ms(col.d[s])
		attributed += d
		fmt.Printf("%-16s  %10.1f ms  %6.1f%%\n", s, d, 100*d/wall)
	}
	fmt.Printf("%-16s  %10.1f ms  %6.1f%% (trace build + transcript)\n",
		"unattributed", wall-attributed, 100*(wall-attributed)/wall)
	fmt.Printf("%-16s  %10.1f ms\n\n", "wall", wall)
}
