package main

import (
	"fmt"
	"testing"

	"zkflow/internal/guest"
	"zkflow/internal/zkvm"
)

// BenchmarkPlanSegments measures the coordinator's per-epoch planning
// cost on the aggregation guest — the serial fraction every farmed
// prove pays before any segment can be dispatched (E18). PlanSegments
// runs on the count-only emulator, so this should track raw execution
// speed, not traced-execution speed; a regression here eats directly
// into farm speedup.
func BenchmarkPlanSegments(b *testing.B) {
	for _, records := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			in := genesisInput(1, records)
			prog := guest.AggregationProgram()
			opts := zkvm.ProveOptions{Checks: 48, SegmentCycles: farmSegCycles, Parallelism: 1}
			words := in.Words()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := zkvm.PlanSegments(prog, words, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
