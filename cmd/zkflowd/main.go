// Command zkflowd is the prover daemon: it runs the simulated
// collection tier (routers → store + commitment ledger), aggregates
// every epoch under a zkVM proof, and serves the public artifacts
// over HTTP (see internal/api) so remote clients (zkflow-verify) can
// audit the operator.
//
// Raw RLogs and the CLog never leave the process: everything served
// is either public by design (ledger, receipts) or a proven result.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"zkflow/internal/api"
	"zkflow/internal/core"
	"zkflow/internal/ingest"
	"zkflow/internal/ledger"
	"zkflow/internal/obs"
	"zkflow/internal/remote"
	"zkflow/internal/router"
	"zkflow/internal/store"
	"zkflow/internal/trafficgen"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8471", "HTTP listen address")
		routers  = flag.Int("routers", 4, "simulated routers")
		records  = flag.Int("records", 50, "records per router per epoch")
		epochs   = flag.Int("epochs", 3, "epochs to run (0 = continuous)")
		interval = flag.Duration("interval", router.EpochSeconds*time.Second, "epoch interval in continuous mode")
		checks   = flag.Int("checks", 32, "zkVM sampled checks per proof")
		seed     = flag.Int64("seed", 1, "workload seed")
		flows    = flag.Int("flows", 256, "flow population size")
		loss     = flag.Float64("loss", 0.02, "packet loss rate")
		worker   = flag.String("worker", "", "off-path proving worker URL (empty = prove locally)")
		farmAddr = flag.String("farm-addr", "", "prover-farm coordinator listen address (empty = no farm); workers dial in with zkflow-worker -farm-addr")
		farmWait = flag.Int("workers", 0, "with -farm-addr: wait for this many farm workers before the first epoch")
		pipeline = flag.Int("pipeline", 0, "pipeline depth: overlap witness generation with up to N in-flight seals (0 = serial)")
		workers  = flag.Int("parallelism", 0, "prover worker-pool width (0 = all CPUs, 1 = serial)")
		segCyc   = flag.Int("segment-cycles", 0, "prove aggregations as continuation chains sliced every N cycles (0 = single-segment)")
		foldRcpt = flag.Bool("fold", false, "with -segment-cycles: fold each composite into one bounded-size receipt (O(1) verify regardless of segment count)")

		debugAddr    = flag.String("debug-addr", "", "operator-only pprof+metrics listen address (empty = off; keep it loopback)")
		metricsEvery = flag.Duration("metrics-every", 0, "log a metrics summary line at this interval (0 = off)")

		ingestAddr    = flag.String("ingest-addr", "", "UDP collector listen address for NetFlow v9 / sFlow exports (empty = simulated collection)")
		ingestShards  = flag.Int("ingest-shards", 4, "ingest worker shards (routers map to shards by ID)")
		ingestSockets = flag.Int("ingest-sockets", 1, "SO_REUSEPORT UDP sockets on the collector port (Linux; >1 spreads datagrams across sockets)")
		epochInterval = flag.Duration("epoch-interval", 5*time.Second, "epoch seal interval in ingest mode")
		replayRecords = flag.Int("replay-records", 0, "self-replay this many records per router per epoch over UDP into the collector (demo/smoke mode)")
	)
	flag.Parse()

	st := store.Open(64)
	lg := ledger.New()
	// One registry carries the whole daemon: zkVM stage timings,
	// scheduler gauges, and the HTTP layer, served at /api/v1/metrics.
	reg := obs.NewRegistry()
	opts := core.Options{Checks: *checks, Parallelism: *workers, SegmentCycles: *segCyc, Fold: *foldRcpt, PipelineDepth: *pipeline, Metrics: reg}
	if *foldRcpt && *segCyc <= 0 {
		log.Printf("warning: -fold has no effect without -segment-cycles")
	}
	switch {
	case *worker != "":
		opts.Prove = remote.NewClient(*worker, nil).Prove
		log.Printf("proving off-path via %s", *worker)
	case *farmAddr != "":
		coord := remote.NewCoordinator(remote.FarmConfig{Metrics: reg})
		if err := coord.Start(*farmAddr); err != nil {
			log.Fatalf("farm coordinator: %v", err)
		}
		defer coord.Close()
		opts.Farm = coord
		log.Printf("farm coordinator listening on %s", coord.Addr())
		if *farmWait > 0 {
			log.Printf("waiting for %d farm workers", *farmWait)
			if err := coord.WaitForWorkers(context.Background(), *farmWait); err != nil {
				log.Fatalf("waiting for farm workers: %v", err)
			}
			log.Printf("%d farm workers registered", coord.Workers())
		}
	}
	prover := core.NewProver(st, lg, opts)
	srv := api.NewServer(prover, lg)
	srv.UseRegistry(reg)

	// The pprof mux is a separate listener, never the public API one:
	// heap and CPU profiles of the prover are operator-only artifacts.
	if *debugAddr != "" {
		go func() {
			log.Printf("debug (pprof+metrics) listening on http://%s/debug/pprof/", *debugAddr)
			log.Printf("debug listener failed: %v", http.ListenAndServe(*debugAddr, obs.DebugHandler(reg)))
		}()
	}
	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				s := reg.Snapshot()
				var http2xx, http4xx, http5xx uint64
				for name, v := range s.Counters {
					switch {
					case strings.HasSuffix(name, ".2xx"):
						http2xx += v
					case strings.HasSuffix(name, ".4xx"):
						http4xx += v
					case strings.HasSuffix(name, ".5xx"):
						http5xx += v
					}
				}
				agg := s.Histograms["core.agg_seconds"]
				log.Printf("metrics: rounds=%d agg_mean=%.0fms queue=%d inflight=%d failed=%d http 2xx/4xx/5xx=%d/%d/%d receipt_bytes=%d",
					s.Counters["core.agg_rounds"], agg.Mean*1000,
					s.Gauges["sched.queue_depth"], s.Gauges["sched.inflight_seals"],
					s.Counters["core.agg_failures"],
					http2xx, http4xx, http5xx, s.Counters["http.receipt_bytes"])
			}
		}()
	}

	logRound := func(res *core.AggregationResult, d time.Duration) {
		log.Printf("epoch %d: %d records -> %d flows, proof %.0f ms, receipt %d B, root %v",
			res.Epoch, res.Journal.NumRecords, res.Journal.NewCount,
			d.Seconds()*1000, res.Receipt.Size(), res.Journal.NewRoot.Bytes())
	}

	// Ingest mode: real UDP collection replaces the simulated tier.
	// The pipeline seals epochs on a timer; each sealed epoch with
	// records is aggregated and served exactly like a simulated one.
	if *ingestAddr != "" {
		sealed := make(chan ingest.Seal, 64)
		pl, err := ingest.New(st, lg, ingest.Config{
			Addr:          *ingestAddr,
			Shards:        *ingestShards,
			Sockets:       *ingestSockets,
			EpochInterval: *epochInterval,
			Metrics:       reg,
			OnSeal: func(s ingest.Seal) {
				select {
				case sealed <- s:
				default:
					// Aggregation is behind by 64 epochs; dropping the
					// notification loses a proof round, never records.
					log.Printf("epoch %d sealed but aggregation backlog full", s.Epoch)
				}
			},
		})
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		if err := pl.Start(); err != nil {
			log.Fatalf("ingest: %v", err)
		}
		go func() {
			for s := range sealed {
				if s.Dropped > 0 {
					log.Printf("epoch %d: %d records dropped at commit (see ingest.records_dropped.* metrics)", s.Epoch, s.Dropped)
				}
				if s.Records == 0 {
					continue
				}
				t0 := time.Now()
				res, err := prover.AggregateEpoch(s.Epoch)
				if err != nil {
					log.Printf("epoch %d aggregation failed: %v", s.Epoch, err)
					continue
				}
				if err := srv.AddAggregationResult(res); err != nil {
					log.Printf("epoch %d: serving receipt: %v", s.Epoch, err)
					continue
				}
				logRound(res, time.Since(t0))
			}
		}()
		if *replayRecords > 0 {
			go func() {
				cfg := trafficgen.Config{Seed: *seed, NumFlows: *flows, Routers: *routers, LossRate: *loss}
				n := *epochs
				if n <= 0 {
					n = 1 << 30
				}
				for e := 0; e < n; e++ {
					if _, err := trafficgen.Replay(*ingestAddr, cfg, trafficgen.ReplayOptions{
						Epochs:           1,
						RecordsPerRouter: *replayRecords,
						Protocol:         trafficgen.ProtoV9,
					}); err != nil {
						log.Printf("replay: %v", err)
						return
					}
					time.Sleep(*epochInterval)
				}
			}()
		}
		log.Printf("ingest collector on udp://%s (%d sockets, %d shards, sealing every %v)", *ingestAddr, pl.Sockets(), *ingestShards, *epochInterval)
		log.Printf("zkflowd listening on http://%s (ingest mode)", *listen)
		httpSrv := &http.Server{
			Addr:         *listen,
			Handler:      srv.Handler(),
			ReadTimeout:  10 * time.Second,
			WriteTimeout: 120 * time.Second,
		}
		log.Fatal(httpSrv.ListenAndServe())
	}

	sim := router.NewSim(trafficgen.Config{
		Seed: *seed, NumFlows: *flows, Routers: *routers, LossRate: *loss,
	}, st, lg)

	runEpoch := func(epoch uint64) error {
		if _, err := sim.RunEpoch(context.Background(), epoch, *records); err != nil {
			return err
		}
		t0 := time.Now()
		res, err := prover.AggregateEpoch(epoch)
		if err != nil {
			return err
		}
		if err := srv.AddAggregationResult(res); err != nil {
			return err
		}
		logRound(res, time.Since(t0))
		return nil
	}

	// runPipelined overlaps collection + witness generation with proof
	// sealing: the Scheduler commits rounds in strict epoch order, so
	// the served receipt chain is identical to the serial one.
	runPipelined := func() {
		sched, err := core.NewScheduler(prover, *pipeline)
		if err != nil {
			log.Printf("pipeline: %v", err)
			return
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			t0 := time.Now()
			for r := range sched.Results() {
				if r.Err != nil {
					log.Printf("epoch %d failed: %v", r.Epoch, r.Err)
					continue
				}
				if err := srv.AddAggregationResult(r.Result); err != nil {
					log.Printf("epoch %d: serving receipt: %v", r.Epoch, err)
					continue
				}
				logRound(r.Result, time.Since(t0))
				t0 = time.Now()
			}
		}()
		for epoch := uint64(0); ; epoch++ {
			if _, err := sim.RunEpoch(context.Background(), epoch, *records); err != nil {
				log.Printf("epoch %d collection failed: %v", epoch, err)
				break
			}
			sched.Submit(epoch)
			if *epochs > 0 && epoch+1 >= uint64(*epochs) {
				break
			}
			if *epochs == 0 {
				time.Sleep(*interval)
			}
		}
		sched.Close()
		<-drained
		log.Printf("pipeline drained after %d rounds; serving", prover.Round())
	}

	go func() {
		if *pipeline > 0 {
			runPipelined()
			return
		}
		for epoch := uint64(0); ; epoch++ {
			if err := runEpoch(epoch); err != nil {
				log.Printf("epoch %d failed: %v", epoch, err)
				return
			}
			if *epochs > 0 && epoch+1 >= uint64(*epochs) {
				log.Printf("finished %d epochs; serving", *epochs)
				return
			}
			if *epochs == 0 {
				time.Sleep(*interval)
			}
		}
	}()

	log.Printf("zkflowd listening on http://%s (%d routers, %d records/epoch)", *listen, *routers, *records)
	httpSrv := &http.Server{
		Addr:         *listen,
		Handler:      srv.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 120 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
