// Command zkflow-benchdiff compares two `zkflow-bench -json` reports
// (e.g. BENCH_PR4.json against a fresh run) and flags regressions:
//
//	zkflow-benchdiff old.json new.json
//	zkflow-benchdiff -threshold 15 old.json new.json
//
// Every gated metric that got slower by more than the threshold
// (default 10%) is listed and the tool exits nonzero, so CI can gate
// future PRs on the committed baseline. Gated metrics: agg_proof_ms,
// query_proof_ms, agg_verify_ms per sweep row, and the stage-split
// wall time. Verify times are few-millisecond quantities, so their
// gate also requires an absolute slowdown above verifyNoiseFloorMs —
// pure timer noise cannot trip it. query_verify_ms stays
// informational.
//
// Ingest throughput (ingest_flows_per_sec) gates in the opposite
// direction — lower is a regression — with its own absolute noise
// floor; only in-process inject rows gate, udp rows are sender-paced
// and stay informational.
//
// Light-sync rows (E17) gate on light_bytes_pct — higher is a
// regression, and any row at or above 10% of full-fetch bytes fails
// outright — and on light_sync_ms like the other verify times.
// full_audit_ms is the comparison baseline and stays informational.
//
// Farm rows (E18) gate on farm_speedup_x for multi-worker rows —
// lower is a regression, and any row under 70% of ideal fails
// outright — and on farm_failover_recovery_ms (higher is a
// regression, with an absolute noise floor sized to the heartbeat
// interval). A farm row that is not byte-identical to the
// single-prover receipt fails unconditionally: that is a correctness
// bug wearing a benchmark's clothes.
//
// Fold rows (E19) gate in both directions at once. Two hard caps are
// absolute — fold_receipt_bytes above 2x the single-segment receipt,
// or fold_verify_ms varying by more than 20% across segment counts
// (the O(1)-verify claim), fail regardless of the baseline. Against
// the baseline, fold_receipt_bytes and fold_verify_ms gate higher-is-
// worse with their own noise floors, and fold_prove_ms gates like the
// other proving times.
//
// Kernel rows (E20) are direction-aware per op. "ntt" rows gate on
// ntt_melems_per_sec like throughput — lower is the regression — with
// an absolute floor so timer wobble on a fast lane cannot fail CI.
// Chain rows ("agg_chain", "fold_chain") gate agg_proof_ms like the
// other proving times and agg_verify_ms like the verify times.
//
// Stdlib only: this is meant to run in the same bare container as the
// benchmarks themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// The types mirror cmd/zkflow-bench's BenchReport schema.

type sweepRow struct {
	Records      int     `json:"records"`
	AggProofMs   float64 `json:"agg_proof_ms"`
	QueryProofMs float64 `json:"query_proof_ms"`
	AggVerifyMs  float64 `json:"agg_verify_ms"`
	QryVerifyMs  float64 `json:"query_verify_ms"`
}

type stageSplit struct {
	Records int                `json:"records"`
	WallMs  float64            `json:"wall_ms"`
	Stages  map[string]float64 `json:"stages_ms"`
}

type ingestRow struct {
	Shards      int     `json:"shards"`
	Transport   string  `json:"transport"`
	Protocol    string  `json:"protocol"`
	FlowsPerSec float64 `json:"ingest_flows_per_sec"`
	DroppedPct  float64 `json:"dropped_pct"`
}

type lightSyncRow struct {
	Epochs        int     `json:"epochs"`
	Entries       int     `json:"entries"`
	Sampled       int     `json:"sampled"`
	LightBytes    int64   `json:"light_bytes"`
	FullBytes     int64   `json:"full_bytes"`
	LightBytesPct float64 `json:"light_bytes_pct"`
	LightSyncMs   float64 `json:"light_sync_ms"`
	FullAuditMs   float64 `json:"full_audit_ms"`
}

type farmRow struct {
	Workers            int     `json:"workers"`
	Failover           bool    `json:"failover"`
	Records            int     `json:"records"`
	Segments           int     `json:"segments"`
	ProveMs            float64 `json:"prove_ms"`
	SpeedupX           float64 `json:"farm_speedup_x"`
	IdealPct           float64 `json:"farm_ideal_pct"`
	FailoverRecoveryMs float64 `json:"farm_failover_recovery_ms"`
	ByteIdentical      bool    `json:"byte_identical"`
}

type foldRow struct {
	SegmentCycles    int     `json:"segment_cycles"`
	Segments         int     `json:"segments"`
	CompositeBytes   int     `json:"composite_bytes"`
	CompositeVerMs   float64 `json:"composite_verify_ms"`
	FoldProveMs      float64 `json:"fold_prove_ms"`
	FoldReceiptBytes int     `json:"fold_receipt_bytes"`
	FoldVerifyMs     float64 `json:"fold_verify_ms"`
	MonoReceiptBytes int     `json:"mono_receipt_bytes"`
	MonoVerifyMs     float64 `json:"mono_verify_ms"`
}

type kernelRow struct {
	Op              string  `json:"op"`
	Size            int     `json:"size"`
	Parallelism     int     `json:"parallelism"`
	AggProofMs      float64 `json:"agg_proof_ms"`
	AggVerifyMs     float64 `json:"agg_verify_ms"`
	NTTMElemsPerSec float64 `json:"ntt_melems_per_sec"`
}

type benchReport struct {
	CPUs      int            `json:"cpus"`
	Checks    int            `json:"checks"`
	Sweep     []sweepRow     `json:"sweep"`
	Stages    stageSplit     `json:"stages"`
	Ingest    []ingestRow    `json:"ingest"`
	LightSync []lightSyncRow `json:"lightsync"`
	Farm      []farmRow      `json:"farm"`
	Fold      []foldRow      `json:"fold"`
	Kernel    []kernelRow    `json:"kernel"`
}

func load(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// delta formats the relative change and reports whether it exceeds
// the regression threshold (newer slower than older by > threshold%).
func delta(oldMs, newMs, threshold float64) (string, bool) {
	if oldMs <= 0 {
		return "   n/a", false
	}
	pct := 100 * (newMs - oldMs) / oldMs
	return fmt.Sprintf("%+6.1f%%", pct), pct > threshold
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: zkflow-benchdiff [-threshold pct] old.json new.json")
		os.Exit(2)
	}
	oldR, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if oldR.CPUs != newR.CPUs || oldR.Checks != newR.Checks {
		fmt.Printf("note: environments differ (old: %d CPUs checks=%d, new: %d CPUs checks=%d) — deltas may not be comparable\n",
			oldR.CPUs, oldR.Checks, newR.CPUs, newR.Checks)
	}

	var regressions []string
	gate := func(name string, oldMs, newMs float64) string {
		d, bad := delta(oldMs, newMs, *threshold)
		if bad {
			regressions = append(regressions, fmt.Sprintf("%s: %.1f ms -> %.1f ms (%s)", name, oldMs, newMs, d))
		}
		return d
	}
	// Verify-time gate: relative threshold AND an absolute floor, so a
	// 1.2 ms -> 1.5 ms timer wobble cannot fail CI while a genuine
	// verification blow-up (e.g. an accidentally quadratic composite
	// check) still does.
	const verifyNoiseFloorMs = 1.0
	gateVerify := func(name string, oldMs, newMs float64) string {
		d, bad := delta(oldMs, newMs, *threshold)
		if bad && newMs-oldMs > verifyNoiseFloorMs {
			regressions = append(regressions, fmt.Sprintf("%s: %.2f ms -> %.2f ms (%s)", name, oldMs, newMs, d))
		}
		return d
	}

	oldByRecords := map[int]sweepRow{}
	for _, r := range oldR.Sweep {
		oldByRecords[r.Records] = r
	}
	fmt.Printf("%8s  %22s  %22s  %20s\n", "records", "agg proof old->new", "query proof old->new", "agg verify old->new")
	for _, n := range newR.Sweep {
		o, ok := oldByRecords[n.Records]
		if !ok {
			fmt.Printf("%8d  (no baseline)\n", n.Records)
			continue
		}
		name := fmt.Sprintf("sweep[%d]", n.Records)
		ad := gate(name+".agg_proof", o.AggProofMs, n.AggProofMs)
		qd := gate(name+".query_proof", o.QueryProofMs, n.QueryProofMs)
		vd := gateVerify(name+".agg_verify", o.AggVerifyMs, n.AggVerifyMs)
		fmt.Printf("%8d  %6.0f -> %-6.0f %s  %6.0f -> %-6.0f %s  %5.1f -> %-5.1f %s\n",
			n.Records, o.AggProofMs, n.AggProofMs, ad, o.QueryProofMs, n.QueryProofMs, qd,
			o.AggVerifyMs, n.AggVerifyMs, vd)
	}

	if oldR.Stages.WallMs > 0 && newR.Stages.WallMs > 0 {
		fmt.Printf("\n%-16s  %22s\n", "stage", "old->new")
		for stage, newMs := range newR.Stages.Stages {
			oldMs, ok := oldR.Stages.Stages[stage]
			if !ok {
				fmt.Printf("%-16s  (no baseline)\n", stage)
				continue
			}
			d, _ := delta(oldMs, newMs, *threshold)
			fmt.Printf("%-16s  %7.1f -> %-7.1f %s\n", stage, oldMs, newMs, d)
		}
		d := gate("stages.wall", oldR.Stages.WallMs, newR.Stages.WallMs)
		fmt.Printf("%-16s  %7.1f -> %-7.1f %s\n", "wall", oldR.Stages.WallMs, newR.Stages.WallMs, d)
	}

	if len(newR.Ingest) > 0 {
		// Throughput gates point the other way: a regression is the new
		// number being LOWER. Relative threshold plus an absolute floor
		// (ingestNoiseFloorFPS) so scheduler wobble on an otherwise
		// multi-million-flows/sec lane cannot fail CI. Only in-process
		// inject rows gate; udp rows are sender-paced and informational.
		const ingestNoiseFloorFPS = 50_000
		oldIngest := map[string]ingestRow{}
		ikey := func(r ingestRow) string {
			return fmt.Sprintf("%s/%s/shards=%d", r.Transport, r.Protocol, r.Shards)
		}
		for _, r := range oldR.Ingest {
			oldIngest[ikey(r)] = r
		}
		fmt.Printf("\n%-24s  %28s\n", "ingest lane", "flows/sec old->new")
		for _, n := range newR.Ingest {
			o, ok := oldIngest[ikey(n)]
			if !ok {
				fmt.Printf("%-24s  (no baseline)\n", ikey(n))
				continue
			}
			pct := 0.0
			if o.FlowsPerSec > 0 {
				pct = 100 * (n.FlowsPerSec - o.FlowsPerSec) / o.FlowsPerSec
			}
			if n.Transport == "inject" && -pct > *threshold && o.FlowsPerSec-n.FlowsPerSec > ingestNoiseFloorFPS {
				regressions = append(regressions, fmt.Sprintf("ingest[%s]: %.0f -> %.0f flows/sec (%+.1f%%)",
					ikey(n), o.FlowsPerSec, n.FlowsPerSec, pct))
			}
			fmt.Printf("%-24s  %9.0f -> %-9.0f %+6.1f%%\n", ikey(n), o.FlowsPerSec, n.FlowsPerSec, pct)
		}
	}

	if len(newR.LightSync) > 0 {
		// Light-sync gates. The bytes ratio is the whole point of the
		// experiment (E17), so it gets two gates: a relative one against
		// the baseline (with an absolute floor of half a percentage
		// point, so JSON framing wobble cannot trip it) and a hard cap —
		// any row at or above 10% of full-fetch bytes fails regardless
		// of what the baseline said. Sync wall time gates like verify
		// times (relative + verifyNoiseFloorMs); full_audit_ms is the
		// baseline lane and stays informational.
		const lightBytesFloorPct = 0.5
		const lightBytesHardCapPct = 10.0
		oldLS := map[int]lightSyncRow{}
		for _, r := range oldR.LightSync {
			oldLS[r.Epochs] = r
		}
		fmt.Printf("\n%8s  %24s  %22s\n", "epochs", "light bytes% old->new", "light sync old->new")
		for _, n := range newR.LightSync {
			if n.LightBytesPct >= lightBytesHardCapPct {
				regressions = append(regressions, fmt.Sprintf("lightsync[%d]: light fetch is %.2f%% of full (target < %.0f%%)",
					n.Epochs, n.LightBytesPct, lightBytesHardCapPct))
			}
			o, ok := oldLS[n.Epochs]
			if !ok {
				fmt.Printf("%8d  (no baseline)\n", n.Epochs)
				continue
			}
			pd, bad := delta(o.LightBytesPct, n.LightBytesPct, *threshold)
			if bad && n.LightBytesPct-o.LightBytesPct > lightBytesFloorPct {
				regressions = append(regressions, fmt.Sprintf("lightsync[%d].bytes_pct: %.2f%% -> %.2f%% (%s)",
					n.Epochs, o.LightBytesPct, n.LightBytesPct, pd))
			}
			md := gateVerify(fmt.Sprintf("lightsync[%d].sync_ms", n.Epochs), o.LightSyncMs, n.LightSyncMs)
			fmt.Printf("%8d  %7.2f%% -> %6.2f%% %s  %5.1f -> %-5.1f %s\n",
				n.Epochs, o.LightBytesPct, n.LightBytesPct, pd, o.LightSyncMs, n.LightSyncMs, md)
		}
	}

	if len(newR.Farm) > 0 {
		// Farm gates. Byte identity is absolute: a farm receipt that
		// differs from the single-prover golden is a correctness failure
		// whatever the baseline says. Speedup gates like throughput —
		// lower is the regression — plus the hard 70%-of-ideal floor the
		// experiment commits to. Failover recovery gates like verify
		// times, with an absolute floor: detection is connection-close
		// driven, so sub-100 ms wobble in when the death is noticed is
		// scheduler noise, not a regression.
		const farmIdealFloorPct = 70.0
		const farmRecoveryFloorMs = 100.0
		oldFarm := map[string]farmRow{}
		fkey := func(r farmRow) string {
			return fmt.Sprintf("%dw/failover=%v", r.Workers, r.Failover)
		}
		for _, r := range oldR.Farm {
			oldFarm[fkey(r)] = r
		}
		fmt.Printf("\n%-18s  %24s  %24s\n", "farm lane", "speedup old->new", "recovery ms old->new")
		for _, n := range newR.Farm {
			if !n.ByteIdentical {
				regressions = append(regressions, fmt.Sprintf("farm[%s]: receipt NOT byte-identical to single-prover output", fkey(n)))
			}
			if !n.Failover && n.Workers > 1 && n.IdealPct < farmIdealFloorPct {
				regressions = append(regressions, fmt.Sprintf("farm[%s]: %.0f%% of ideal speedup (target >= %.0f%%)",
					fkey(n), n.IdealPct, farmIdealFloorPct))
			}
			o, ok := oldFarm[fkey(n)]
			if !ok {
				fmt.Printf("%-18s  (no baseline)\n", fkey(n))
				continue
			}
			spct := 0.0
			if o.SpeedupX > 0 {
				spct = 100 * (n.SpeedupX - o.SpeedupX) / o.SpeedupX
			}
			if !n.Failover && n.Workers > 1 && -spct > *threshold {
				regressions = append(regressions, fmt.Sprintf("farm[%s]: %.2fx -> %.2fx speedup (%+.1f%%)",
					fkey(n), o.SpeedupX, n.SpeedupX, spct))
			}
			rd, bad := delta(o.FailoverRecoveryMs, n.FailoverRecoveryMs, *threshold)
			if bad && n.FailoverRecoveryMs-o.FailoverRecoveryMs > farmRecoveryFloorMs {
				regressions = append(regressions, fmt.Sprintf("farm[%s].recovery: %.1f ms -> %.1f ms (%s)",
					fkey(n), o.FailoverRecoveryMs, n.FailoverRecoveryMs, rd))
			}
			fmt.Printf("%-18s  %7.2fx -> %-7.2fx %+5.1f%%  %6.1f -> %-6.1f %s\n",
				fkey(n), o.SpeedupX, n.SpeedupX, spct, o.FailoverRecoveryMs, n.FailoverRecoveryMs, rd)
		}
	}

	if len(newR.Fold) > 0 {
		// Fold gates (E19). The experiment's two commitments are
		// absolute: the folded receipt stays within 2x the
		// single-segment receipt at any segment count, and fold verify
		// time is flat — O(1) in segments — so the spread between the
		// cheapest and dearest row may not exceed the flatness cap (with
		// the usual absolute floor so sub-millisecond wobble at tiny
		// proofs cannot trip it). Against the baseline, receipt bytes
		// gate higher-is-worse with a floor of one FRI query's worth of
		// growth (~4 KB, below which it is layout wobble, not a leak),
		// verify like the other verify times, and fold_prove_ms like the
		// proving times. Composite and mono columns are the comparison
		// baselines and stay informational.
		const foldFlatnessCapPct = 20.0
		const foldBytesFloorB = 4096
		oldFold := map[int]foldRow{}
		for _, r := range oldR.Fold {
			oldFold[r.Segments] = r
		}
		minVer, maxVer := newR.Fold[0].FoldVerifyMs, newR.Fold[0].FoldVerifyMs
		fmt.Printf("\n%8s  %26s  %22s  %22s\n", "segments", "fold bytes old->new", "fold verify old->new", "fold prove old->new")
		for _, n := range newR.Fold {
			if n.MonoReceiptBytes > 0 && n.FoldReceiptBytes > 2*n.MonoReceiptBytes {
				regressions = append(regressions, fmt.Sprintf("fold[%dseg]: folded receipt %d B > 2x mono %d B",
					n.Segments, n.FoldReceiptBytes, n.MonoReceiptBytes))
			}
			if n.FoldVerifyMs < minVer {
				minVer = n.FoldVerifyMs
			}
			if n.FoldVerifyMs > maxVer {
				maxVer = n.FoldVerifyMs
			}
			o, ok := oldFold[n.Segments]
			if !ok {
				fmt.Printf("%8d  (no baseline)\n", n.Segments)
				continue
			}
			bpct := 0.0
			if o.FoldReceiptBytes > 0 {
				bpct = 100 * float64(n.FoldReceiptBytes-o.FoldReceiptBytes) / float64(o.FoldReceiptBytes)
			}
			if bpct > *threshold && n.FoldReceiptBytes-o.FoldReceiptBytes > foldBytesFloorB {
				regressions = append(regressions, fmt.Sprintf("fold[%dseg].receipt_bytes: %d -> %d (%+.1f%%)",
					n.Segments, o.FoldReceiptBytes, n.FoldReceiptBytes, bpct))
			}
			vd := gateVerify(fmt.Sprintf("fold[%dseg].verify", n.Segments), o.FoldVerifyMs, n.FoldVerifyMs)
			pd := gate(fmt.Sprintf("fold[%dseg].prove", n.Segments), o.FoldProveMs, n.FoldProveMs)
			fmt.Printf("%8d  %9d -> %-9d %+5.1f%%  %6.1f -> %-6.1f %s  %6.0f -> %-6.0f %s\n",
				n.Segments, o.FoldReceiptBytes, n.FoldReceiptBytes, bpct,
				o.FoldVerifyMs, n.FoldVerifyMs, vd, o.FoldProveMs, n.FoldProveMs, pd)
		}
		if minVer > 0 && maxVer-minVer > verifyNoiseFloorMs {
			if spread := 100 * (maxVer - minVer) / minVer; spread > foldFlatnessCapPct {
				regressions = append(regressions, fmt.Sprintf(
					"fold: verify not flat across segment counts: %.2f ms .. %.2f ms (%.0f%% spread, cap %.0f%%)",
					minVer, maxVer, spread, foldFlatnessCapPct))
			}
		}
	}

	if len(newR.Kernel) > 0 {
		// Kernel gates (E20), direction-aware per op. NTT rows gate
		// like throughput — LOWER Melem/s is the regression — with an
		// absolute floor so timer wobble on a fast lane cannot fail
		// CI. Chain rows gate agg_proof_ms like the other proving
		// times and agg_verify_ms like the verify times.
		const nttNoiseFloorMElems = 1.0
		oldKernel := map[string]kernelRow{}
		kkey := func(r kernelRow) string {
			return fmt.Sprintf("%s/n=%d/p=%d", r.Op, r.Size, r.Parallelism)
		}
		for _, r := range oldR.Kernel {
			oldKernel[kkey(r)] = r
		}
		fmt.Printf("\n%-24s  %30s  %22s\n", "kernel lane", "proof ms | Melem/s old->new", "verify old->new")
		for _, n := range newR.Kernel {
			o, ok := oldKernel[kkey(n)]
			if !ok {
				fmt.Printf("%-24s  (no baseline)\n", kkey(n))
				continue
			}
			if n.Op == "ntt" {
				pct := 0.0
				if o.NTTMElemsPerSec > 0 {
					pct = 100 * (n.NTTMElemsPerSec - o.NTTMElemsPerSec) / o.NTTMElemsPerSec
				}
				if -pct > *threshold && o.NTTMElemsPerSec-n.NTTMElemsPerSec > nttNoiseFloorMElems {
					regressions = append(regressions, fmt.Sprintf("kernel[%s]: %.2f -> %.2f Melem/s (%+.1f%%)",
						kkey(n), o.NTTMElemsPerSec, n.NTTMElemsPerSec, pct))
				}
				fmt.Printf("%-24s  %10.2f -> %-10.2f %+5.1f%%\n",
					kkey(n), o.NTTMElemsPerSec, n.NTTMElemsPerSec, pct)
				continue
			}
			pd := gate(fmt.Sprintf("kernel[%s].agg_proof", kkey(n)), o.AggProofMs, n.AggProofMs)
			vd := gateVerify(fmt.Sprintf("kernel[%s].agg_verify", kkey(n)), o.AggVerifyMs, n.AggVerifyMs)
			fmt.Printf("%-24s  %10.1f -> %-10.1f %s  %5.1f -> %-5.1f %s\n",
				kkey(n), o.AggProofMs, n.AggProofMs, pd, o.AggVerifyMs, n.AggVerifyMs, vd)
		}
	}

	if len(regressions) > 0 {
		fmt.Printf("\nREGRESSIONS (> %.0f%% slower):\n", *threshold)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		os.Exit(1)
	}
	fmt.Printf("\nno proving-time regressions > %.0f%%\n", *threshold)
}
