// Command zkflow-verify is the client/auditor CLI: it connects to a
// zkflowd operator, downloads the public commitment ledger and every
// aggregation receipt, verifies the entire chain locally, and then —
// optionally — submits a query and verifies the proven answer against
// the chain-derived trusted root. At no point does it see any raw
// telemetry.
//
// Usage:
//
//	zkflow-verify -server http://127.0.0.1:8471 \
//	    -query 'SELECT SUM(hop_count) FROM clogs WHERE proto = 6;'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"zkflow/internal/api"
	"zkflow/internal/core"
	"zkflow/internal/fold"
	"zkflow/internal/guest"
	"zkflow/internal/zkvm"
)

// verifyFolded establishes a folded round soundly: a folded receipt
// is only a prover-trusted binding, so the auditor fetches the
// round's audit artifact (the pre-fold composite), verifies it in
// full — the journals are bit-identical, so the chain advances
// exactly as it would from the folded form — and cross-checks it
// against the folded statement with fold.AuditBinding. Only when the
// operator retained no composite, and only under -trust-folded, is
// the folded receipt accepted on its binding alone.
func verifyFolded(ctx context.Context, client *api.Client, verifier *core.Verifier, round int, fr *fold.FoldedReceipt, trust bool) (*guest.AggJournal, string, error) {
	audit, err := client.AggregationAudit(ctx, round)
	if err == nil {
		comp, ok := audit.(*zkvm.CompositeReceipt)
		if !ok {
			return nil, "", fmt.Errorf("audit artifact is %T, want the pre-fold composite", audit)
		}
		j, verr := verifier.VerifyAggregation(comp)
		if verr != nil {
			return nil, "", verr
		}
		if berr := fold.AuditBinding(fr, comp); berr != nil {
			return nil, "", berr
		}
		return j, fmt.Sprintf("folded, %d segments, audited via composite", fr.Stmt.Segments), nil
	}
	if !trust {
		return nil, "", fmt.Errorf("folded round's audit composite is unavailable (%v); a folded receipt alone only proves what the operator asserts — rerun with -trust-folded to accept it on operator trust", err)
	}
	j, verr := verifier.VerifyAggregation(fr)
	if verr != nil {
		return nil, "", verr
	}
	return j, fmt.Sprintf("folded, %d segments, operator-trusted", fr.Stmt.Segments), nil
}

func main() {
	var (
		serverURL   = flag.String("server", "http://127.0.0.1:8471", "zkflowd base URL")
		sql         = flag.String("query", "", "SQL query to prove and verify (optional)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
		stateFile   = flag.String("state", "", "auditor state file: resume a verified chain and persist progress")
		trustFolded = flag.Bool("trust-folded", false, "accept folded rounds on their prover-trusted binding when the operator retained no audit composite (explicit operator trust)")
	)
	flag.Parse()
	log.SetFlags(0)
	ctx := context.Background()
	client := api.New(*serverURL, api.WithTimeout(*timeout), api.WithRetry(2, 250*time.Millisecond))

	status, err := client.Status(ctx)
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	fmt.Printf("operator: %d rounds aggregated, %d ledger commitments\n", status.Rounds, status.LedgerLen)

	// 1. Download + chain-verify the public commitment ledger.
	lg, err := client.Ledger(ctx)
	if err != nil {
		log.Fatalf("ledger chain INVALID: %v", err)
	}
	_, n := lg.Head()
	fmt.Printf("ledger chain: %d commitments, hash chain VERIFIED\n", n)

	// 2. Verify every aggregation receipt in order, resuming from a
	// persisted auditor state when one exists.
	verifier := core.NewVerifier(lg)
	if *stateFile != "" {
		if f, err := os.Open(*stateFile); err == nil {
			verifier, err = core.LoadVerifier(f, lg)
			f.Close()
			if err != nil {
				log.Fatalf("state file: %v", err)
			}
			fmt.Printf("resuming from persisted state: %d rounds already verified\n", verifier.Rounds())
		}
	}
	if *trustFolded {
		verifier.SetAcceptProverTrusted(true)
	}
	for round := verifier.Rounds(); round < status.Rounds; round++ {
		receipt, err := client.AggregationReceipt(ctx, round)
		if err != nil {
			log.Fatalf("receipt %d: %v", round, err)
		}
		t0 := time.Now()
		var j *guest.AggJournal
		form := "single-segment"
		switch r := receipt.(type) {
		case *zkvm.CompositeReceipt:
			form = fmt.Sprintf("%d-segment composite", r.NumSegments())
			j, err = verifier.VerifyAggregation(receipt)
		case *fold.FoldedReceipt:
			j, form, err = verifyFolded(ctx, client, verifier, round, r, *trustFolded)
		default:
			j, err = verifier.VerifyAggregation(receipt)
		}
		if err != nil {
			log.Fatalf("round %d verification FAILED: %v", round, err)
		}
		fmt.Printf("round %d: epoch %d, %d records, %d flows, root %v — VERIFIED (%s) in %.1f ms\n",
			round, j.Epoch, j.NumRecords, j.NewCount, j.NewRoot.Bytes(), form,
			time.Since(t0).Seconds()*1000)
	}
	fmt.Printf("aggregation chain VERIFIED; trusted root %v\n", verifier.TrustedRoot().Bytes())
	if *stateFile != "" {
		f, err := os.Create(*stateFile)
		if err != nil {
			log.Fatalf("state file: %v", err)
		}
		if err := verifier.SaveState(f); err != nil {
			f.Close()
			log.Fatalf("state file: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("state file: %v", err)
		}
		fmt.Printf("auditor state saved to %s\n", *stateFile)
	}

	// 3. Optional proven query.
	if *sql == "" {
		return
	}
	qres, receipt, err := client.Query(ctx, *sql)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	t0 := time.Now()
	j, err := verifier.VerifyQuery(*sql, receipt)
	if err != nil {
		log.Fatalf("query verification FAILED: %v", err)
	}
	fmt.Printf("\n%s\n  claimed %d — VERIFIED (%d matched flows, %.1f ms, receipt %d B)\n",
		*sql, j.Result(), j.Matched, time.Since(t0).Seconds()*1000, receipt.Size())
	if qres.Result != j.Result() {
		log.Fatalf("operator's claimed value %d differs from proven value %d", qres.Result, j.Result())
	}
}
