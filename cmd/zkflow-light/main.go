// Command zkflow-light is the light-client auditor: it trusts one
// pinned ledger checkpoint and, on every run, advances it to the
// operator's current head by verifying a ledger delta, a random
// sample of aggregation receipts, and an inclusion-proof spot check —
// downloading a small fraction of what the full auditor
// (zkflow-verify) fetches.
//
// First run (no state file) pins trust-on-first-use: the chosen
// checkpoint is validated, stored, and its digest printed so it can
// be compared out of band. Every later run verifies forward from the
// pin and refuses — loudly, with a non-zero exit — any history that
// does not extend it.
//
// Usage:
//
//	zkflow-light -server http://127.0.0.1:8471 -state light.json
//	zkflow-light -server ... -state light.json -pin-epoch 0   # pin a specific epoch
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"zkflow/internal/api"
	"zkflow/internal/lightsync"
)

func main() {
	var (
		serverURL = flag.String("server", "http://127.0.0.1:8471", "zkflowd base URL")
		stateFile = flag.String("state", "zkflow-light.json", "pinned checkpoint state file")
		pinEpoch  = flag.Int64("pin-epoch", -1, "on first run, pin the checkpoint sealed for this epoch (-1 = latest)")
		samples   = flag.Int("samples", 0, "aggregation rounds to spot-verify (0 = server suggestion, -1 = none)")
		seed      = flag.Int64("seed", 0, "sampling seed (0 = random)")
		minChecks = flag.Int("min-checks", 0, "minimum sampled checks a receipt seal must carry")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
		trustFold = flag.Bool("trust-folded", false, "accept sampled folded rounds on their prover-trusted binding when the operator retained no audit composite")
	)
	flag.Parse()
	log.SetFlags(0)
	ctx := context.Background()
	client := api.New(*serverURL,
		api.WithTimeout(*timeout),
		api.WithRetry(2, 250*time.Millisecond),
		api.WithCache(),
	)

	st, pinned, err := loadOrPin(ctx, client, *serverURL, *stateFile, *pinEpoch)
	if err != nil {
		log.Fatalf("SYNC FAILED: %v", err)
	}
	if pinned {
		d := st.Checkpoint.Digest()
		fmt.Printf("pinned checkpoint (trust on first use): epoch %d, %d entries\n", st.Checkpoint.Epoch, st.Checkpoint.Count)
		fmt.Printf("  digest %s — compare this out of band before relying on it\n", hex.EncodeToString(d[:]))
	}

	rep, err := lightsync.Sync(ctx, client, st, lightsync.Options{
		Samples:     *samples,
		Seed:        *seed,
		MinChecks:   *minChecks,
		TrustFolded: *trustFold,
	})
	if err != nil {
		log.Fatalf("SYNC FAILED: %v", err)
	}
	if err := saveState(*stateFile, st); err != nil {
		log.Fatalf("state file: %v", err)
	}

	if rep.UpToDate {
		fmt.Printf("up to date at epoch %d (%d entries); nothing to verify\n", rep.To.Epoch, rep.To.Count)
		return
	}
	fmt.Printf("SYNC VERIFIED: epoch %d -> %d (%d new entries across %d epochs)\n",
		rep.From.Epoch, rep.To.Epoch, rep.NewEntries, len(rep.NewEpochs))
	fmt.Printf("  receipts spot-verified: %d (rounds %v)\n", len(rep.SampledRounds), rep.SampledRounds)
	if len(rep.AuditedRounds) > 0 {
		fmt.Printf("  folded rounds audited via composite: %d (rounds %v)\n", len(rep.AuditedRounds), rep.AuditedRounds)
	}
	if len(rep.TrustedRounds) > 0 {
		fmt.Printf("  folded rounds accepted on OPERATOR TRUST: %d (rounds %v)\n", len(rep.TrustedRounds), rep.TrustedRounds)
	}
	fmt.Printf("  inclusion proofs checked: %d\n", rep.ProofsChecked)
	fmt.Printf("  transfer: %d bytes (%d cache revalidations)\n", rep.Bytes, rep.CacheHits)
	d := rep.To.Digest()
	fmt.Printf("  new pin: %d entries, digest %s\n", rep.To.Count, hex.EncodeToString(d[:]))
}

// loadOrPin loads the persisted pin, or establishes one
// trust-on-first-use. pinned reports whether this run created it.
func loadOrPin(ctx context.Context, client *api.Client, server, path string, pinEpoch int64) (st *lightsync.State, pinned bool, err error) {
	if buf, rerr := os.ReadFile(path); rerr == nil {
		st = new(lightsync.State)
		if err := json.Unmarshal(buf, st); err != nil {
			return nil, false, fmt.Errorf("state file %s: %w", path, err)
		}
		if err := st.Check(); err != nil {
			return nil, false, fmt.Errorf("state file %s: %w", path, err)
		}
		return st, false, nil
	} else if !os.IsNotExist(rerr) {
		return nil, false, rerr
	}
	if pinEpoch >= 0 {
		cp, err := client.CheckpointByEpoch(ctx, uint64(pinEpoch))
		if err != nil {
			return nil, false, err
		}
		st, err = lightsync.Pin(server, cp)
		if err != nil {
			return nil, false, err
		}
		return st, true, nil
	}
	cps, err := client.Checkpoints(ctx)
	if err != nil {
		return nil, false, err
	}
	if cps.Latest == nil {
		return nil, false, lightsync.ErrNoCheckpoint
	}
	st, err = lightsync.Pin(server, *cps.Latest)
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

func saveState(path string, st *lightsync.State) error {
	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
