// Command zkflow-worker is an off-path proving node (paper §7,
// "off-path computation"): a stateless HTTP service that executes
// guest programs over submitted inputs and returns receipts. Point
// zkflowd at it with -worker to move all heavy cryptographic work off
// the collection path:
//
//	zkflow-worker -listen 127.0.0.1:8481
//	zkflowd -worker http://127.0.0.1:8481
package main

import (
	"flag"
	"log"

	"zkflow/internal/remote"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8481", "HTTP listen address")
	flag.Parse()
	log.Fatal(remote.Serve(*listen))
}
