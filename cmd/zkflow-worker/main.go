// Command zkflow-worker is an off-path proving node (paper §7,
// "off-path computation"). It runs in one of two modes:
//
// HTTP mode (default): a stateless HTTP service that executes guest
// programs over submitted inputs and returns receipts. Point zkflowd
// at it with -worker to move all heavy cryptographic work off the
// collection path:
//
//	zkflow-worker -listen 127.0.0.1:8481
//	zkflowd -worker http://127.0.0.1:8481
//
// Farm mode (-farm-addr): a prover-farm worker that dials the zkflowd
// coordinator, registers its capacity, and proves dispatched jobs —
// whole aggregations or individual zkVM segments — reconnecting with
// backoff whenever the coordinator restarts or the link drops:
//
//	zkflowd -farm-addr 127.0.0.1:8491 -workers 4
//	zkflow-worker -farm-addr 127.0.0.1:8491 -capacity 2 -name rack1
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zkflow/internal/remote"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8481", "HTTP listen address (HTTP mode)")
		farmAddr = flag.String("farm-addr", "", "farm coordinator address to dial (enables farm mode)")
		capacity = flag.Int("capacity", 1, "concurrent proving jobs offered to the coordinator (farm mode)")
		name     = flag.String("name", "", "worker display name reported to the coordinator (farm mode)")
	)
	flag.Parse()

	if *farmAddr == "" {
		log.Fatal(remote.Serve(*listen))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := remote.WorkerConfig{Name: *name, Capacity: *capacity}

	// Reconnect loop: a dead coordinator (or a network blip) is retried
	// with capped exponential backoff; a successful session resets it.
	backoff := time.Second
	const maxBackoff = 30 * time.Second
	for {
		start := time.Now()
		err := remote.RunWorker(ctx, *farmAddr, cfg)
		if ctx.Err() != nil {
			log.Printf("worker shutting down")
			return
		}
		if time.Since(start) > maxBackoff {
			backoff = time.Second // the session worked for a while; reset
		}
		log.Printf("farm session ended (%v); reconnecting in %v", err, backoff)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}
