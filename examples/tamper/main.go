// Command tamper reproduces the paper's §5/§6 tamper experiment: any
// post-commitment modification of telemetry makes proof generation
// fail (guest abort) or verification fail (hash/Merkle/chain
// mismatch). It exercises four attack surfaces: the raw log store,
// the published commitment ledger, a receipt's journal, and a replay
// of stale aggregation state.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"zkflow/internal/core"
	"zkflow/internal/ledger"
	"zkflow/internal/netflow"
	"zkflow/internal/router"
	"zkflow/internal/store"
	"zkflow/internal/trafficgen"
	"zkflow/internal/zkvm"
)

func check(name string, attackDetected bool, detail string) {
	status := "DETECTED"
	if !attackDetected {
		status = "MISSED!!"
	}
	fmt.Printf("%-34s %-9s %s\n", name, status, detail)
}

func freshPipeline(seed int64) (*store.Store, *ledger.Ledger, *core.Prover, *core.Verifier) {
	st := store.Open(0)
	lg := ledger.New()
	sim := router.NewSim(trafficgen.Config{Seed: seed, NumFlows: 32, Routers: 2}, st, lg)
	if err := sim.RunEpochs(context.Background(), 0, 2, 10); err != nil {
		log.Fatal(err)
	}
	return st, lg, core.NewProver(st, lg, core.Options{Checks: 12}), core.NewVerifier(lg)
}

func main() {
	log.SetFlags(0)
	fmt.Println("attack surface                     outcome   detail")
	fmt.Println("----------------------------------------------------------------------")

	// Attack 1: modify stored records after the commitment window.
	{
		st, _, prover, _ := freshPipeline(1)
		st.Append(0, 0, []netflow.Record{{Key: netflow.FlowKey{SrcIP: 0xbadf00d}, Packets: 1, StartUnix: 1, EndUnix: 2}})
		_, err := prover.AggregateEpoch(0)
		var abort *zkvm.GuestAbortError
		check("RLog mutated after commitment", errors.As(err, &abort),
			fmt.Sprintf("guest abort: %v", err))
	}

	// Attack 2: rewrite a published ledger entry.
	{
		_, lg, _, _ := freshPipeline(2)
		entries := lg.Entries()
		entries[1].Hash[0] ^= 0xff
		err := ledger.VerifyChain(entries)
		check("ledger history rewritten", err != nil, fmt.Sprintf("%v", err))
	}

	// Attack 3: falsify a journal word in a sound receipt.
	{
		_, _, prover, verifier := freshPipeline(3)
		res, err := prover.AggregateEpoch(0)
		if err != nil {
			log.Fatal(err)
		}
		journal := res.Receipt.(*zkvm.Receipt).Journal
		journal[len(journal)-1] ^= 1 // flip a root word
		_, err = verifier.VerifyAggregation(res.Receipt)
		check("receipt journal falsified", err != nil, fmt.Sprintf("%v", err))
	}

	// Attack 4: replay round 0's receipt after round 1 (stale state).
	{
		_, _, prover, verifier := freshPipeline(4)
		r0, err := prover.AggregateEpoch(0)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := verifier.VerifyAggregation(r0.Receipt); err != nil {
			log.Fatal(err)
		}
		r1, err := prover.AggregateEpoch(1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := verifier.VerifyAggregation(r1.Receipt); err != nil {
			log.Fatal(err)
		}
		_, err = verifier.VerifyAggregation(r0.Receipt)
		check("stale aggregation replayed", errors.Is(err, core.ErrChainBroken), fmt.Sprintf("%v", err))
	}

	// Control: the untampered path still works end to end.
	{
		_, _, prover, verifier := freshPipeline(5)
		res, err := prover.AggregateEpoch(0)
		if err != nil {
			log.Fatal(err)
		}
		_, err = verifier.VerifyAggregation(res.Receipt)
		if err != nil {
			log.Fatalf("control run failed: %v", err)
		}
		fmt.Println("----------------------------------------------------------------------")
		fmt.Println("control (no tampering): aggregation proven and verified normally")
	}
}
