// Command sla demonstrates proof-based SLA enforcement (paper §2.1):
// an operator proves that at least 90% of flows meet the agreed RTT
// and jitter bounds — "RTT < X ms and jitter < Z ms" — without
// exposing a single measurement. The auditor checks two receipts (a
// filtered count and a total count) against the verified aggregation
// chain and computes the compliance ratio itself.
package main

import (
	"context"
	"fmt"
	"log"

	"zkflow/internal/core"
	"zkflow/internal/ledger"
	"zkflow/internal/router"
	"zkflow/internal/store"
	"zkflow/internal/trafficgen"
)

// The SLA under audit.
const (
	rttBoundMicros    = 26000 // RTT < 26 ms
	jitterBoundMicros = 2400  // jitter < 2.4 ms
	requiredFraction  = 0.90
)

func main() {
	log.SetFlags(0)

	st := store.Open(0)
	lg := ledger.New()
	sim := router.NewSim(trafficgen.Config{
		Seed:          7,
		NumFlows:      96,
		Routers:       4,
		BaseRTTMicros: 21000,
		JitterMicros:  2500,
	}, st, lg)
	if err := sim.RunEpochs(context.Background(), 0, 2, 30); err != nil {
		log.Fatal(err)
	}

	prover := core.NewProver(st, lg, core.Options{Checks: 12})
	auditor := core.NewVerifier(lg)
	for epoch := uint64(0); epoch < 2; epoch++ {
		res, err := prover.AggregateEpoch(epoch)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := auditor.VerifyAggregation(res.Receipt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("aggregation chain verified: %d rounds, root %v\n\n",
		auditor.Rounds(), auditor.TrustedRoot().Bytes())

	// The operator proves the two counts the SLA ratio needs.
	compliantSQL := fmt.Sprintf(
		"SELECT COUNT(*) FROM clogs WHERE rtt_max < %d AND jitter_max < %d;",
		rttBoundMicros, jitterBoundMicros)
	totalSQL := "SELECT COUNT(*) FROM clogs;"

	prove := func(sql string) uint64 {
		qr, err := prover.Query(sql)
		if err != nil {
			log.Fatalf("prove %q: %v", sql, err)
		}
		j, err := auditor.VerifyQuery(sql, qr.Receipt)
		if err != nil {
			log.Fatalf("verify %q: %v", sql, err)
		}
		fmt.Printf("verified: %-90s -> %d\n", sql, j.Matched)
		return uint64(j.Matched)
	}
	compliant := prove(compliantSQL)
	total := prove(totalSQL)

	if total == 0 {
		log.Fatal("no flows aggregated")
	}
	ratio := float64(compliant) / float64(total)
	fmt.Printf("\nSLA: RTT < %dµs AND jitter < %dµs for ≥ %.0f%% of flows\n",
		rttBoundMicros, jitterBoundMicros, requiredFraction*100)
	fmt.Printf("proven compliance: %d/%d flows = %.1f%%\n", compliant, total, ratio*100)
	if ratio >= requiredFraction {
		fmt.Println("verdict: SLA SATISFIED (cryptographically attested)")
	} else {
		fmt.Println("verdict: SLA VIOLATED (cryptographically attested)")
	}
	fmt.Println("\nThe auditor never saw a flow record — only receipts and the public ledger.")
}
