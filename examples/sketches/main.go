// Command sketches demonstrates the paper's claim that the design
// accommodates "any logging or sketching algorithm" (§1): routers
// summarise an epoch as Count-Min sketches instead of raw NetFlow
// records, publish hash commitments over the sketches, and the
// operator proves — in the zkVM — that the merged sketch and a set of
// per-flow estimates were computed from exactly the committed
// sketches. The auditor checks the receipt and reads heavy-hitter
// estimates without ever seeing a counter it wasn't shown.
package main

import (
	"fmt"
	"log"
	"time"

	"zkflow/internal/guest"
	"zkflow/internal/netflow"
	"zkflow/internal/sketch"
	"zkflow/internal/trafficgen"
	"zkflow/internal/zkvm"
)

const (
	depth = 4
	width = 1024
)

func main() {
	log.SetFlags(0)

	// Routers sketch an epoch of traffic instead of logging records.
	gens := trafficgen.PerRouter(trafficgen.Config{Seed: 11, NumFlows: 200, Routers: 4})
	var batches []guest.SketchBatch
	truth := map[netflow.FlowKey]uint32{} // ground truth for the demo
	for i, g := range gens {
		s := sketch.MustNew(depth, width)
		for _, rec := range g.Batch(uint32(i), 0, 400) {
			s.AddRecord(&rec)
			truth[rec.Key] += rec.Packets
		}
		batches = append(batches, guest.SketchBatch{
			ID:         uint32(i),
			Commitment: guest.CommitSketch(s), // published like an RLog hash
			Sketch:     s,
		})
		fmt.Printf("router %d: committed a %dx%d sketch (%d B), L1=%d packets\n",
			i, depth, width, 4*(2+depth*width), s.L1())
	}

	// The auditor picks flows to interrogate (public queries).
	var candidates []netflow.FlowKey
	for k := range truth {
		candidates = append(candidates, k)
		if len(candidates) == 6 {
			break
		}
	}

	// Operator proves the merge + estimates in the zkVM.
	prog := guest.SketchMergeProgram(depth, width)
	t0 := time.Now()
	receipt, err := zkvm.Prove(prog, guest.SketchInput(batches, candidates), zkvm.ProveOptions{Checks: 16})
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	fmt.Printf("\nmerge+estimate proof: %.0f ms, receipt %d B\n",
		time.Since(t0).Seconds()*1000, receipt.Size())

	// Auditor verifies and reads the journal.
	if err := zkvm.Verify(prog, receipt, zkvm.VerifyOptions{}); err != nil {
		log.Fatalf("verify: %v", err)
	}
	j, err := guest.ParseSketchJournal(receipt.Journal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %d router sketches merged, merged digest %v\n\n",
		j.NumRouters, j.MergedDigest.Bytes())
	fmt.Printf("%-44s %10s %10s\n", "flow", "proven est", "truth")
	for i, k := range j.Queries {
		fmt.Printf("%-44s %10d %10d\n", k, j.Estimates[i], truth[k])
		if j.Estimates[i] < truth[k] {
			log.Fatal("Count-Min underestimated — impossible for honest sketches")
		}
	}
	fmt.Println("\nEvery estimate ≥ truth (Count-Min property), proven over committed sketches.")
}
