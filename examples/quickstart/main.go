// Command quickstart walks the full zkflow pipeline in-process: four
// routers generate NetFlow records and publish hash commitments, the
// prover aggregates two epochs under zkVM proofs, and an independent
// verifier — holding only public data — validates the aggregation
// chain and a proven query (the literal example query from the
// paper's §6).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zkflow/internal/core"
	"zkflow/internal/ledger"
	"zkflow/internal/router"
	"zkflow/internal/store"
	"zkflow/internal/trafficgen"
)

func main() {
	log.SetFlags(0)

	// 1. Collection tier: 4 routers, shared store, public ledger.
	st := store.Open(16)
	lg := ledger.New()
	sim := router.NewSim(trafficgen.Config{
		Seed:     42,
		NumFlows: 64,
		Routers:  4,
		LossRate: 0.02,
	}, st, lg)

	const epochs = 2
	fmt.Printf("routers: %d   epochs: %d (commit interval %ds)\n",
		len(sim.Routers), epochs, router.EpochSeconds)
	if err := sim.RunEpochs(context.Background(), 0, epochs, 25); err != nil {
		log.Fatalf("collection: %v", err)
	}
	head, n := lg.Head()
	fmt.Printf("ledger: %d commitments, head %v\n", n, head)

	// 2. Prover: aggregate each epoch (Algorithm 1, proven in the VM).
	prover := core.NewProver(st, lg, core.Options{Checks: 16})
	verifier := core.NewVerifier(lg)
	for epoch := uint64(0); epoch < epochs; epoch++ {
		t0 := time.Now()
		res, err := prover.AggregateEpoch(epoch)
		if err != nil {
			log.Fatalf("aggregate epoch %d: %v", epoch, err)
		}
		genTime := time.Since(t0)

		t0 = time.Now()
		j, err := verifier.VerifyAggregation(res.Receipt)
		if err != nil {
			log.Fatalf("verify epoch %d: %v", epoch, err)
		}
		fmt.Printf("epoch %d: %4d records -> %4d flows | proof %6.0fms (%d B seal) | verify %4.1fms | root %v\n",
			epoch, j.NumRecords, j.NewCount, genTime.Seconds()*1000,
			res.Receipt.SealSize(), time.Since(t0).Seconds()*1000, j.NewRoot.Bytes())
	}

	// 3. A client asks the paper's query and verifies the answer
	// without ever seeing a single NetFlow record.
	sql := `SELECT SUM(hop_count) FROM clogs WHERE proto = 6;`
	qr, err := prover.Query(sql)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	j, err := verifier.VerifyQuery(sql, qr.Receipt)
	if err != nil {
		log.Fatalf("verify query: %v", err)
	}
	fmt.Printf("\n%s\n  -> %d over %d flows (receipt %d B, VERIFIED against root %v)\n",
		sql, j.Result(), j.Matched, qr.Receipt.Size(), verifier.TrustedRoot().Bytes())
}
