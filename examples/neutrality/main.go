// Command neutrality demonstrates a network-neutrality audit (paper
// §2.1): a regulator compares the proven mean RTT of two content
// providers' traffic through the same operator. The simulated
// operator throttles provider B (3x RTT bias); the audit detects the
// differential treatment from verified query receipts alone, with no
// access to per-user flow records.
package main

import (
	"context"
	"fmt"
	"log"

	"zkflow/internal/core"
	"zkflow/internal/ledger"
	"zkflow/internal/netflow"
	"zkflow/internal/router"
	"zkflow/internal/store"
	"zkflow/internal/trafficgen"
)

func main() {
	log.SetFlags(0)

	providers := []trafficgen.Provider{
		{Name: "video-a", DstIP: netflow.MustParseIPv4("9.9.9.9"), RTTBias: 1.0},
		{Name: "video-b", DstIP: netflow.MustParseIPv4("8.8.8.8"), RTTBias: 3.0}, // throttled
	}
	st := store.Open(0)
	lg := ledger.New()
	sim := router.NewSim(trafficgen.Config{
		Seed:          99,
		NumFlows:      120,
		Routers:       4,
		BaseRTTMicros: 20000,
		JitterMicros:  1500,
		Providers:     providers,
	}, st, lg)
	if err := sim.RunEpochs(context.Background(), 0, 2, 35); err != nil {
		log.Fatal(err)
	}

	operator := core.NewProver(st, lg, core.Options{Checks: 12})
	regulator := core.NewVerifier(lg)
	for epoch := uint64(0); epoch < 2; epoch++ {
		res, err := operator.AggregateEpoch(epoch)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := regulator.VerifyAggregation(res.Receipt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("aggregation chain verified (%d rounds)\n\n", regulator.Rounds())

	// Per provider: mean per-record RTT = SUM(rtt_sum) / SUM(count),
	// both proven and verified independently.
	meanRTT := func(p trafficgen.Provider) float64 {
		ip := fmt.Sprintf("%d.%d.%d.%d", p.DstIP>>24, (p.DstIP>>16)&0xff, (p.DstIP>>8)&0xff, p.DstIP&0xff)
		sumSQL := fmt.Sprintf(`SELECT SUM(rtt_sum) FROM clogs WHERE dst_ip = "%s";`, ip)
		cntSQL := fmt.Sprintf(`SELECT SUM(count) FROM clogs WHERE dst_ip = "%s";`, ip)
		var vals [2]uint64
		for i, sql := range []string{sumSQL, cntSQL} {
			qr, err := operator.Query(sql)
			if err != nil {
				log.Fatalf("prove %q: %v", sql, err)
			}
			j, err := regulator.VerifyQuery(sql, qr.Receipt)
			if err != nil {
				log.Fatalf("verify %q: %v", sql, err)
			}
			vals[i] = j.Result()
		}
		if vals[1] == 0 {
			log.Fatalf("provider %s has no traffic", p.Name)
		}
		mean := float64(vals[0]) / float64(vals[1])
		fmt.Printf("%-8s proven ΣRTT=%12d over %6d records -> mean RTT %7.0f µs\n",
			p.Name, vals[0], vals[1], mean)
		return mean
	}

	a := meanRTT(providers[0])
	b := meanRTT(providers[1])

	const tolerance = 1.5 // policy: >50% differential is a violation
	ratio := b / a
	fmt.Printf("\ndifferential treatment ratio: %.2fx (policy tolerance %.1fx)\n", ratio, tolerance)
	if ratio > tolerance || 1/ratio > tolerance {
		fmt.Println("verdict: NEUTRALITY VIOLATION detected from verified telemetry")
	} else {
		fmt.Println("verdict: traffic classes statistically equivalent")
	}
	fmt.Println("\nThe regulator localised the violation to this operator without any raw logs.")
}
